#include "lf/declarative.h"

#include <memory>
#include <regex>
#include <unordered_set>
#include <utility>

#include "lf/compiled/spec.h"
#include "text/stemmer.h"
#include "util/string_util.h"

namespace snorkel {

namespace {

std::unordered_set<std::string> BuildKeywordSet(
    const std::vector<std::string>& keywords, bool stem) {
  std::unordered_set<std::string> set;
  for (const auto& kw : keywords) {
    std::string lower = ToLower(kw);
    set.insert(stem ? Stemmer::Stem(lower) : lower);
  }
  return set;
}

bool AnyKeyword(const std::vector<std::string>& words,
                const std::unordered_set<std::string>& keywords, bool stem) {
  for (const auto& word : words) {
    std::string lower = ToLower(word);
    if (keywords.count(stem ? Stemmer::StemCached(lower) : lower) > 0) {
      return true;
    }
  }
  return false;
}

/// Attaches the compiler-facing description of a factory-built LF. The spec
/// is advisory — the lambda stays the behaviour of record — so it does not
/// enter the fingerprint.
LabelingFunction WithSpec(LabelingFunction lf, LfCompileSpec spec) {
  lf.AttachCompileSpec(std::make_shared<const LfCompileSpec>(std::move(spec)));
  return lf;
}

/// Deterministic encoding of a factory's parameters, hashed (with the LF
/// name) into the behaviour fingerprint. Any parameter change then changes
/// the fingerprint, so the incremental applier's column cache and the
/// snapshot compatibility check observe declarative LF edits with no manual
/// version bump. Custom callables stay opaque — callers wrapping arbitrary
/// code use the (name, version, fn) constructor and bump the version
/// themselves.
std::string Params(std::initializer_list<std::string> parts) {
  std::string tag;
  for (const auto& part : parts) {
    tag += part;
    tag += '\x1f';  // Unit separator: parts never contain it.
  }
  return tag;
}

std::string JoinKeywords(const std::vector<std::string>& keywords) {
  std::string joined;
  for (const auto& kw : keywords) {
    joined += kw;
    joined += '\x1e';
  }
  return joined;
}

}  // namespace

LabelingFunction MakeKeywordBetweenLF(std::string name,
                                      std::vector<std::string> keywords,
                                      Label label, bool stem) {
  auto set = BuildKeywordSet(keywords, stem);
  LabelingFunction lf(
      std::move(name),
      Params({"kw_between", JoinKeywords(keywords), std::to_string(label),
              std::to_string(stem)}),
      [set = std::move(set), label, stem](const CandidateView& view) -> Label {
        return AnyKeyword(view.WordsBetween(), set, stem) ? label : kAbstain;
      });
  LfCompileSpec spec;
  spec.kind = LfSpecKind::kKeywordBetween;
  spec.keywords = std::move(keywords);
  spec.stem = stem;
  spec.label = label;
  return WithSpec(std::move(lf), std::move(spec));
}

LabelingFunction MakeDirectionalKeywordLF(std::string name,
                                          std::vector<std::string> keywords,
                                          Label label_forward,
                                          Label label_reverse, bool stem) {
  auto set = BuildKeywordSet(keywords, stem);
  LabelingFunction lf(
      std::move(name),
      Params({"dir_kw", JoinKeywords(keywords), std::to_string(label_forward),
              std::to_string(label_reverse), std::to_string(stem)}),
      [set = std::move(set), label_forward, label_reverse,
       stem](const CandidateView& view) -> Label {
        if (!AnyKeyword(view.WordsBetween(), set, stem)) return kAbstain;
        return view.Span1First() ? label_forward : label_reverse;
      });
  LfCompileSpec spec;
  spec.kind = LfSpecKind::kDirectionalKeyword;
  spec.keywords = std::move(keywords);
  spec.stem = stem;
  spec.label = label_forward;
  spec.label_reverse = label_reverse;
  return WithSpec(std::move(lf), std::move(spec));
}

LabelingFunction MakeRegexBetweenLF(std::string name, const std::string& regex,
                                    Label label) {
  auto pattern = std::make_shared<std::regex>(
      regex, std::regex::ECMAScript | std::regex::icase);
  LabelingFunction lf(
      std::move(name), Params({"regex_between", regex, std::to_string(label)}),
      [pattern, label](const CandidateView& view) -> Label {
        return std::regex_search(view.TextBetween(), *pattern) ? label
                                                               : kAbstain;
      });
  LfCompileSpec spec;
  spec.kind = LfSpecKind::kRegexBetween;
  spec.label = label;
  spec.regex = regex;
  return WithSpec(std::move(lf), std::move(spec));
}

LabelingFunction MakeContextKeywordLF(std::string name,
                                      std::vector<std::string> keywords,
                                      size_t window, Label label, bool stem) {
  auto set = BuildKeywordSet(keywords, stem);
  LabelingFunction lf(
      std::move(name),
      Params({"ctx_kw", JoinKeywords(keywords), std::to_string(window),
              std::to_string(label), std::to_string(stem)}),
      [set = std::move(set), window, label,
       stem](const CandidateView& view) -> Label {
        if (AnyKeyword(view.WordsLeftOfFirst(window), set, stem) ||
            AnyKeyword(view.WordsRightOfSecond(window), set, stem)) {
          return label;
        }
        return kAbstain;
      });
  LfCompileSpec spec;
  spec.kind = LfSpecKind::kContextKeyword;
  spec.keywords = std::move(keywords);
  spec.stem = stem;
  spec.window = window;
  spec.label = label;
  return WithSpec(std::move(lf), std::move(spec));
}

LabelingFunction MakeDistanceLF(std::string name, size_t max_tokens,
                                Label label) {
  LabelingFunction lf(
      std::move(name),
      Params({"distance", std::to_string(max_tokens), std::to_string(label)}),
      [max_tokens, label](const CandidateView& view) -> Label {
        return view.TokenDistance() > max_tokens ? label : kAbstain;
      });
  LfCompileSpec spec;
  spec.kind = LfSpecKind::kDistance;
  spec.label = label;
  spec.max_tokens = max_tokens;
  return WithSpec(std::move(lf), std::move(spec));
}

LabelingFunction MakeSentenceKeywordLF(std::string name,
                                       std::vector<std::string> keywords,
                                       Label label, bool stem) {
  auto set = BuildKeywordSet(keywords, stem);
  LabelingFunction lf(
      std::move(name),
      Params({"sent_kw", JoinKeywords(keywords), std::to_string(label),
              std::to_string(stem)}),
      [set = std::move(set), label,
       stem](const CandidateView& view) -> Label {
        return AnyKeyword(view.sentence().words, set, stem) ? label : kAbstain;
      });
  LfCompileSpec spec;
  spec.kind = LfSpecKind::kSentenceKeyword;
  spec.keywords = std::move(keywords);
  spec.stem = stem;
  spec.label = label;
  return WithSpec(std::move(lf), std::move(spec));
}

LabelingFunction MakeDocumentKeywordLF(std::string name,
                                       std::vector<std::string> keywords,
                                       Label label, bool stem) {
  auto set = BuildKeywordSet(keywords, stem);
  LabelingFunction lf(
      std::move(name),
      Params({"doc_kw", JoinKeywords(keywords), std::to_string(label),
              std::to_string(stem)}),
      [set = std::move(set), label,
       stem](const CandidateView& view) -> Label {
        const Document& doc =
            view.corpus().document(view.candidate().span1.doc);
        for (const Sentence& sentence : doc.sentences) {
          if (AnyKeyword(sentence.words, set, stem)) return label;
        }
        return kAbstain;
      });
  LfCompileSpec spec;
  spec.kind = LfSpecKind::kDocumentKeyword;
  spec.keywords = std::move(keywords);
  spec.stem = stem;
  spec.label = label;
  return WithSpec(std::move(lf), std::move(spec));
}

LabelingFunction MakeOntologyLF(std::string name, const KnowledgeBase* kb,
                                std::string subset, Label label,
                                bool symmetric) {
  // The subset's size stands in for the KB contents (hashing every pair on
  // each construction would be O(|KB|)); mutating the KB in place after
  // building the LF is not observed — rebuild the LF set instead.
  return LabelingFunction(
      std::move(name),
      Params({"ontology", subset, std::to_string(label),
              std::to_string(symmetric), std::to_string(kb->SubsetSize(subset))}),
      [handle = kb->ResolveSubset(subset), label,
       symmetric](const CandidateView& view) -> Label {
        const std::string& id1 = view.candidate().span1.canonical_id;
        const std::string& id2 = view.candidate().span2.canonical_id;
        if (KnowledgeBase::ContainsResolved(handle, id1, id2)) return label;
        if (symmetric && KnowledgeBase::ContainsResolved(handle, id2, id1)) {
          return label;
        }
        return kAbstain;
      });
}

std::vector<LabelingFunction> MakeOntologyLFs(
    const std::string& name_prefix, const KnowledgeBase* kb,
    const std::map<std::string, Label>& subset_labels, bool symmetric) {
  std::vector<LabelingFunction> lfs;
  lfs.reserve(subset_labels.size());
  for (const auto& [subset, label] : subset_labels) {
    lfs.push_back(MakeOntologyLF(name_prefix + "_" + subset, kb, subset, label,
                                 symmetric));
  }
  return lfs;
}

LabelingFunction MakeWeakClassifierLF(
    std::string name, std::function<double(const CandidateView&)> score,
    double lower, double upper) {
  // The scoring callable is opaque; only the thresholds enter the
  // fingerprint. Version the name when the underlying classifier changes.
  return LabelingFunction(
      std::move(name),
      Params({"weak_clf", std::to_string(lower), std::to_string(upper)}),
      [score = std::move(score), lower,
       upper](const CandidateView& view) -> Label {
        double p = score(view);
        if (p > upper) return 1;
        if (p < lower) return -1;
        return kAbstain;
      });
}

LabelingFunction MakeCrowdWorkerLF(std::string name,
                                   std::map<size_t, Label> votes) {
  // The vote table IS the behaviour; fold it in (std::map iterates in key
  // order, so the encoding is deterministic).
  std::string vote_tag = "crowd";
  for (const auto& [index, label] : votes) {
    vote_tag += '\x1f';
    vote_tag += std::to_string(index);
    vote_tag += ':';
    vote_tag += std::to_string(label);
  }
  return LabelingFunction(
      std::move(name), std::move(vote_tag),
      [votes = std::move(votes)](const CandidateView& view) -> Label {
        auto it = votes.find(view.index());
        return it == votes.end() ? kAbstain : it->second;
      });
}

std::vector<LabelingFunction> MakeCrowdWorkerLFs(
    const std::string& name_prefix,
    const std::vector<std::map<size_t, Label>>& worker_votes) {
  std::vector<LabelingFunction> lfs;
  lfs.reserve(worker_votes.size());
  for (size_t w = 0; w < worker_votes.size(); ++w) {
    lfs.push_back(MakeCrowdWorkerLF(name_prefix + "_" + std::to_string(w),
                                    worker_votes[w]));
  }
  return lfs;
}

LabelingFunction MakeGuardedLF(
    std::string name, LabelingFunction lf,
    std::function<bool(const CandidateView&)> guard) {
  // The guard callable is opaque; the wrapped LF's fingerprint is folded
  // in so edits to it propagate through the combinator.
  std::string tag = Params({"guarded", std::to_string(lf.fingerprint())});
  return LabelingFunction(
      std::move(name), std::move(tag),
      [lf = std::move(lf), guard = std::move(guard)](
          const CandidateView& view) -> Label {
        return guard(view) ? lf.Apply(view) : kAbstain;
      });
}

LabelingFunction MakeFirstVoteLF(std::string name,
                                 std::vector<LabelingFunction> lfs) {
  std::string tag = "first_vote";
  for (const auto& lf : lfs) {
    tag += '\x1f';
    tag += std::to_string(lf.fingerprint());
  }
  return LabelingFunction(
      std::move(name), std::move(tag),
      [lfs = std::move(lfs)](const CandidateView& view) -> Label {
        for (const auto& lf : lfs) {
          Label vote = lf.Apply(view);
          if (vote != kAbstain) return vote;
        }
        return kAbstain;
      });
}

}  // namespace snorkel
