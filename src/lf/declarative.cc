#include "lf/declarative.h"

#include <regex>
#include <unordered_set>
#include <utility>

#include "text/stemmer.h"
#include "util/string_util.h"

namespace snorkel {

namespace {

std::unordered_set<std::string> BuildKeywordSet(
    const std::vector<std::string>& keywords, bool stem) {
  std::unordered_set<std::string> set;
  for (const auto& kw : keywords) {
    std::string lower = ToLower(kw);
    set.insert(stem ? Stemmer::Stem(lower) : lower);
  }
  return set;
}

bool AnyKeyword(const std::vector<std::string>& words,
                const std::unordered_set<std::string>& keywords, bool stem) {
  for (const auto& word : words) {
    std::string lower = ToLower(word);
    if (keywords.count(stem ? Stemmer::Stem(lower) : lower) > 0) return true;
  }
  return false;
}

}  // namespace

LabelingFunction MakeKeywordBetweenLF(std::string name,
                                      std::vector<std::string> keywords,
                                      Label label, bool stem) {
  auto set = BuildKeywordSet(keywords, stem);
  return LabelingFunction(
      std::move(name), [set = std::move(set), label, stem](
                           const CandidateView& view) -> Label {
        return AnyKeyword(view.WordsBetween(), set, stem) ? label : kAbstain;
      });
}

LabelingFunction MakeDirectionalKeywordLF(std::string name,
                                          std::vector<std::string> keywords,
                                          Label label_forward,
                                          Label label_reverse, bool stem) {
  auto set = BuildKeywordSet(keywords, stem);
  return LabelingFunction(
      std::move(name),
      [set = std::move(set), label_forward, label_reverse,
       stem](const CandidateView& view) -> Label {
        if (!AnyKeyword(view.WordsBetween(), set, stem)) return kAbstain;
        return view.Span1First() ? label_forward : label_reverse;
      });
}

LabelingFunction MakeRegexBetweenLF(std::string name, const std::string& regex,
                                    Label label) {
  auto pattern = std::make_shared<std::regex>(
      regex, std::regex::ECMAScript | std::regex::icase);
  return LabelingFunction(
      std::move(name), [pattern, label](const CandidateView& view) -> Label {
        return std::regex_search(view.TextBetween(), *pattern) ? label
                                                               : kAbstain;
      });
}

LabelingFunction MakeContextKeywordLF(std::string name,
                                      std::vector<std::string> keywords,
                                      size_t window, Label label, bool stem) {
  auto set = BuildKeywordSet(keywords, stem);
  return LabelingFunction(
      std::move(name), [set = std::move(set), window, label,
                        stem](const CandidateView& view) -> Label {
        if (AnyKeyword(view.WordsLeftOfFirst(window), set, stem) ||
            AnyKeyword(view.WordsRightOfSecond(window), set, stem)) {
          return label;
        }
        return kAbstain;
      });
}

LabelingFunction MakeDistanceLF(std::string name, size_t max_tokens,
                                Label label) {
  return LabelingFunction(
      std::move(name), [max_tokens, label](const CandidateView& view) -> Label {
        return view.TokenDistance() > max_tokens ? label : kAbstain;
      });
}

LabelingFunction MakeSentenceKeywordLF(std::string name,
                                       std::vector<std::string> keywords,
                                       Label label, bool stem) {
  auto set = BuildKeywordSet(keywords, stem);
  return LabelingFunction(
      std::move(name), [set = std::move(set), label,
                        stem](const CandidateView& view) -> Label {
        return AnyKeyword(view.sentence().words, set, stem) ? label : kAbstain;
      });
}

LabelingFunction MakeDocumentKeywordLF(std::string name,
                                       std::vector<std::string> keywords,
                                       Label label, bool stem) {
  auto set = BuildKeywordSet(keywords, stem);
  return LabelingFunction(
      std::move(name), [set = std::move(set), label,
                        stem](const CandidateView& view) -> Label {
        const Document& doc =
            view.corpus().document(view.candidate().span1.doc);
        for (const Sentence& sentence : doc.sentences) {
          if (AnyKeyword(sentence.words, set, stem)) return label;
        }
        return kAbstain;
      });
}

LabelingFunction MakeOntologyLF(std::string name, const KnowledgeBase* kb,
                                std::string subset, Label label,
                                bool symmetric) {
  return LabelingFunction(
      std::move(name), [kb, subset = std::move(subset), label,
                        symmetric](const CandidateView& view) -> Label {
        const std::string& id1 = view.candidate().span1.canonical_id;
        const std::string& id2 = view.candidate().span2.canonical_id;
        if (kb->Contains(subset, id1, id2)) return label;
        if (symmetric && kb->Contains(subset, id2, id1)) return label;
        return kAbstain;
      });
}

std::vector<LabelingFunction> MakeOntologyLFs(
    const std::string& name_prefix, const KnowledgeBase* kb,
    const std::map<std::string, Label>& subset_labels, bool symmetric) {
  std::vector<LabelingFunction> lfs;
  lfs.reserve(subset_labels.size());
  for (const auto& [subset, label] : subset_labels) {
    lfs.push_back(MakeOntologyLF(name_prefix + "_" + subset, kb, subset, label,
                                 symmetric));
  }
  return lfs;
}

LabelingFunction MakeWeakClassifierLF(
    std::string name, std::function<double(const CandidateView&)> score,
    double lower, double upper) {
  return LabelingFunction(
      std::move(name), [score = std::move(score), lower,
                        upper](const CandidateView& view) -> Label {
        double p = score(view);
        if (p > upper) return 1;
        if (p < lower) return -1;
        return kAbstain;
      });
}

LabelingFunction MakeCrowdWorkerLF(std::string name,
                                   std::map<size_t, Label> votes) {
  return LabelingFunction(
      std::move(name),
      [votes = std::move(votes)](const CandidateView& view) -> Label {
        auto it = votes.find(view.index());
        return it == votes.end() ? kAbstain : it->second;
      });
}

std::vector<LabelingFunction> MakeCrowdWorkerLFs(
    const std::string& name_prefix,
    const std::vector<std::map<size_t, Label>>& worker_votes) {
  std::vector<LabelingFunction> lfs;
  lfs.reserve(worker_votes.size());
  for (size_t w = 0; w < worker_votes.size(); ++w) {
    lfs.push_back(MakeCrowdWorkerLF(name_prefix + "_" + std::to_string(w),
                                    worker_votes[w]));
  }
  return lfs;
}

LabelingFunction MakeGuardedLF(
    std::string name, LabelingFunction lf,
    std::function<bool(const CandidateView&)> guard) {
  return LabelingFunction(
      std::move(name),
      [lf = std::move(lf), guard = std::move(guard)](
          const CandidateView& view) -> Label {
        return guard(view) ? lf.Apply(view) : kAbstain;
      });
}

LabelingFunction MakeFirstVoteLF(std::string name,
                                 std::vector<LabelingFunction> lfs) {
  return LabelingFunction(
      std::move(name),
      [lfs = std::move(lfs)](const CandidateView& view) -> Label {
        for (const auto& lf : lfs) {
          Label vote = lf.Apply(view);
          if (vote != kAbstain) return vote;
        }
        return kAbstain;
      });
}

}  // namespace snorkel
