#ifndef SNORKEL_LF_APPLIER_H_
#define SNORKEL_LF_APPLIER_H_

#include <memory>
#include <vector>

#include "core/label_matrix.h"
#include "data/candidate.h"
#include "lf/labeling_function.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace snorkel {

class CompiledLfProgram;
class ThreadPool;

/// One row of an LF-application request, by reference: the candidate to
/// label plus the index CandidateView::index() reports for it. The sharded
/// serving tier fans a request out as refs so sub-batches neither copy
/// candidates nor renumber them — an index-dependent LF (e.g. a crowd-vote
/// LF keyed on the stored row index) sees exactly the indices it would see
/// in the unsharded request.
struct CandidateRef {
  const Candidate* candidate = nullptr;
  size_t index = 0;
};

/// Builds the identity ref view of `candidates` (row i ↦ {&candidates[i], i}).
std::vector<CandidateRef> MakeCandidateRefs(
    const std::vector<Candidate>& candidates);

/// Applies a labeling-function set over a candidate set to produce the label
/// matrix Λ. Candidates are independent, so application is embarrassingly
/// parallel (paper Appendix C "Execution Model"); the applier shards the
/// candidate range over a thread pool, the single-node analog of the paper's
/// multiprocessing / Spark layers.
class LFApplier {
 public:
  struct Options {
    /// Worker threads; 0 = hardware concurrency, 1 = serial.
    size_t num_threads = 0;
    /// Cardinality of the resulting matrix (2 = binary ±1).
    int cardinality = 2;
    /// Dispatch compilable LFs through the batch engine (lf/compiled/):
    /// one shared automaton scan per distinct sentence instead of
    /// string/stem/hash work per LF per candidate. Output is bitwise
    /// identical to the interpreted path; uncompilable LFs always run
    /// interpreted.
    bool use_compiled = true;
    /// Pre-built program (e.g. mmap-loaded from a snapshot's LFCP section).
    /// Used when it matches the applied LF set fingerprint-for-fingerprint;
    /// otherwise the applier compiles (memoized process-wide) on first use.
    std::shared_ptr<const CompiledLfProgram> compiled_program = nullptr;
  };

  /// `num_threads > 1` creates this applier's dedicated pool ONCE, here —
  /// never per Apply call (a per-call pool paid thread start-up on every
  /// serving request; see serve/incremental_applier.h). `num_threads == 0`
  /// routes every apply through the process-wide SharedThreadPool().
  explicit LFApplier(Options options);
  LFApplier() : LFApplier(Options{}) {}

  // Out-of-line: the dedicated pool is an incomplete type here.
  LFApplier(LFApplier&&) noexcept;
  LFApplier& operator=(LFApplier&&) noexcept;
  ~LFApplier();

  /// Runs every LF on every candidate. Votes outside the valid label range
  /// for the configured cardinality surface as an InvalidArgument error
  /// (a buggy LF should fail loudly, not corrupt Λ).
  ///
  /// `cancel` (optional) is a cooperative cancellation token checked at row
  /// chunk boundaries; an expired token aborts the remaining rows and the
  /// call returns kDeadlineExceeded instead of burning CPU on an answer
  /// nobody is waiting for. Work that completed before expiry still returns
  /// its matrix.
  Result<LabelMatrix> Apply(const LabelingFunctionSet& lfs,
                            const Corpus& corpus,
                            const std::vector<Candidate>& candidates,
                            const CancelToken* cancel = nullptr) const;

  /// Same, over borrowed rows: matrix row i is rows[i].candidate, and each
  /// LF's CandidateView reports rows[i].index. The referenced candidates
  /// must stay alive for the duration of the call.
  Result<LabelMatrix> ApplyRefs(const LabelingFunctionSet& lfs,
                                const Corpus& corpus,
                                const std::vector<CandidateRef>& rows,
                                const CancelToken* cancel = nullptr) const;

 private:
  Options options_;
  /// Dedicated workers when num_threads > 1; null otherwise (serial, or the
  /// shared pool).
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace snorkel

#endif  // SNORKEL_LF_APPLIER_H_
