#ifndef SNORKEL_LF_LABELING_FUNCTION_H_
#define SNORKEL_LF_LABELING_FUNCTION_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/types.h"
#include "data/candidate.h"

namespace snorkel {

struct LfCompileSpec;  // lf/compiled/spec.h

/// The labeling function (LF) abstraction of §2.1: a black-box function
/// λ : X -> Y ∪ {∅} that inspects a candidate and either votes a label or
/// abstains (kAbstain). Hand-written LFs wrap an arbitrary callable —
/// the C++ analog of the paper's "arbitrary snippet of Python" — while the
/// declarative operator library (declarative.h) covers the common weak
/// supervision patterns.
class LabelingFunction {
 public:
  using Fn = std::function<Label(const CandidateView&)>;

  LabelingFunction(std::string name, Fn fn);

  /// Constructs an LF with an explicit version tag. The fingerprint hashes
  /// (name, version); bump the version whenever the function's *behaviour*
  /// changes so caches keyed on the fingerprint (serve/incremental_applier.h)
  /// invalidate exactly that column.
  LabelingFunction(std::string name, std::string version, Fn fn);

  const std::string& name() const { return name_; }

  /// Behaviour identity of this LF: hash of (name, version). Two LFs with
  /// equal fingerprints are assumed to label identically — the contract the
  /// incremental applier and snapshot compatibility checks rely on.
  uint64_t fingerprint() const { return fingerprint_; }

  /// Applies the LF to one candidate.
  Label Apply(const CandidateView& view) const { return fn_(view); }

  /// Declarative description for the LF compiler (lf/compiled/), attached by
  /// the factory that built this LF. Null for opaque lambdas — those always
  /// run interpreted. The spec never participates in the fingerprint: it is
  /// redundant with (name, version), which already pin the behaviour.
  const std::shared_ptr<const LfCompileSpec>& compile_spec() const {
    return compile_spec_;
  }
  void AttachCompileSpec(std::shared_ptr<const LfCompileSpec> spec) {
    compile_spec_ = std::move(spec);
  }

 private:
  std::string name_;
  uint64_t fingerprint_ = 0;
  Fn fn_;
  std::shared_ptr<const LfCompileSpec> compile_spec_;
};

/// An ordered set of labeling functions; the unit the applier consumes.
/// LF *generators* (Example 2.4) append many functions at once.
class LabelingFunctionSet {
 public:
  LabelingFunctionSet() = default;

  /// Appends one LF and returns its column index.
  size_t Add(LabelingFunction lf);

  /// Appends every LF in `lfs` (generator output).
  void AddAll(std::vector<LabelingFunction> lfs);

  size_t size() const { return lfs_.size(); }
  bool empty() const { return lfs_.empty(); }
  const LabelingFunction& at(size_t j) const { return lfs_[j]; }

  /// LF names in column order (for analysis tables).
  std::vector<std::string> Names() const;

  /// LF fingerprints in column order (for caches and snapshot metadata).
  std::vector<uint64_t> Fingerprints() const;

 private:
  std::vector<LabelingFunction> lfs_;
};

}  // namespace snorkel

#endif  // SNORKEL_LF_LABELING_FUNCTION_H_
