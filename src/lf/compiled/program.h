#ifndef SNORKEL_LF_COMPILED_PROGRAM_H_
#define SNORKEL_LF_COMPILED_PROGRAM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "lf/compiled/spec.h"
#include "util/status.h"

namespace snorkel {

class LabelingFunctionSet;

/// A flat Aho-Corasick automaton in CSR form over u32 symbols. Node 0 is the
/// root; edges per node are sorted by symbol for binary-search stepping, and
/// per-node output lists are pre-flattened through the failure closure, so
/// matching never chases fail links for outputs — one Step() plus one output
/// range per input symbol. The same structure serves both the token-id
/// automaton (symbols are interned token ids) and the byte automaton
/// (symbols are lowercased bytes) — the phillip-style "precompute the match
/// structure once, ship it as data" shape.
struct FlatAutomaton {
  std::vector<uint32_t> edge_offsets;  // num_nodes + 1
  std::vector<uint32_t> edge_symbols;  // sorted within each node's range
  std::vector<uint32_t> edge_targets;  // parallel to edge_symbols
  std::vector<uint32_t> fail;          // num_nodes; fail[0] == 0
  std::vector<uint32_t> out_offsets;   // num_nodes + 1
  std::vector<uint32_t> out_patterns;  // pattern ids, failure-closed

  size_t num_nodes() const { return fail.size(); }

  /// One transition: follows failure links on miss; root misses stay at
  /// root. Never allocates.
  uint32_t Step(uint32_t state, uint32_t symbol) const;
};

/// Deterministic builder: patterns added in the same order always produce
/// byte-identical flat automata (trie nodes numbered in insertion order,
/// BFS failure links, sorted edges).
class AutomatonBuilder {
 public:
  AutomatonBuilder();

  /// Adds one pattern (a non-empty symbol sequence); returns its pattern id
  /// (dense, in insertion order).
  uint32_t AddPattern(const std::vector<uint32_t>& symbols);

  size_t num_patterns() const { return num_patterns_; }

  FlatAutomaton Build() const;

 private:
  struct Node {
    std::map<uint32_t, uint32_t> edges;  // ordered: deterministic flatten
    std::vector<uint32_t> ends;          // pattern ids ending here
  };
  std::vector<Node> nodes_;
  size_t num_patterns_ = 0;
};

/// One compiled LF: which column it backs, how its hits are scoped, and
/// what it votes. The fingerprint pins the entry to the exact LF behaviour
/// it was compiled from — a program is only used when every entry's
/// fingerprint matches the live LF set column-for-column.
struct CompiledLfEntry {
  uint64_t fingerprint = 0;
  uint32_t lf_index = 0;
  LfSpecKind kind = LfSpecKind::kKeywordBetween;
  Label label = kAbstain;
  Label label_reverse = kAbstain;  // kDirectionalKeyword
  uint32_t window = 0;             // kContextKeyword
  uint64_t max_tokens = 0;         // kDistance
};

/// The compiled LF artifact: every compilable LF in a set lowered into one
/// shared token-id Aho-Corasick pass (all keyword families at once, with
/// per-LF scope checks applied to the shared hit stream), one shared byte
/// automaton for literal-alternation regex families, and an interned symbol
/// table so the scan loop compares u32 ids, never strings. Immutable once
/// Finalize()d (the symbol index holds views into `symbols`), serializable
/// as the snapshot `LFCP` section, and shared across threads/replicas via
/// shared_ptr/mmap.
class CompiledLfProgram {
 public:
  static constexpr uint32_t kNoSymbol = 0xffffffffu;

  CompiledLfProgram() = default;
  CompiledLfProgram(const CompiledLfProgram&) = delete;
  CompiledLfProgram& operator=(const CompiledLfProgram&) = delete;

  // --- Serialized state ---
  uint64_t num_lfs = 0;                  // columns in the source LF set
  std::vector<CompiledLfEntry> entries;  // one per compiled LF ("slot")
  std::vector<std::string> symbols;      // interned token strings
  /// Token patterns: single interned symbols encoded (id << 1) | domain,
  /// domain 0 = lowercased form, 1 = stemmed form. The two domains share
  /// the automaton but can never collide (stemming is not idempotent, so a
  /// token's lower form matching a stem pattern would be a false positive).
  FlatAutomaton token_ac;
  std::vector<uint32_t> token_pattern_slots;   // pattern id -> entry slot
  /// Byte patterns: lowercased literal branches of regex alternations,
  /// matched over the space-joined lowercased sentence.
  FlatAutomaton byte_ac;
  std::vector<uint32_t> byte_pattern_slots;    // pattern id -> entry slot
  std::vector<uint32_t> byte_pattern_lengths;  // bytes per pattern

  // --- Derived by Finalize() ---
  std::vector<int32_t> slot_of_lf;  // num_lfs; -1 = interpreted column
  bool has_doc_scope = false;       // any kDocumentKeyword entries
  bool needs_lower_pass = false;    // any domain-0 token patterns
  bool needs_stem_pass = false;     // any domain-1 token patterns

  size_t num_compiled() const { return entries.size(); }

  /// Interned id of a token string, or kNoSymbol.
  uint32_t LookupSymbol(std::string_view token) const {
    auto it = symbol_index_.find(token);
    return it == symbol_index_.end() ? kNoSymbol : it->second;
  }

  /// Builds the derived members. Must be called exactly once, after the
  /// serialized state stops changing.
  void Finalize();

  /// Deterministic wire encoding (the LFCP section payload). Two programs
  /// compiled from behaviourally identical LF sets encode byte-identically.
  std::string Encode() const;

  /// Decodes and validates an Encode() payload. Rejects structurally
  /// inconsistent input (out-of-range indices, malformed automata) with
  /// kIOError rather than trusting it.
  static Result<std::shared_ptr<const CompiledLfProgram>> Decode(
      std::string_view payload);

 private:
  // Views into `symbols`; safe because the program is immutable after
  // Finalize() and non-copyable.
  std::unordered_map<std::string_view, uint32_t> symbol_index_;
};

/// Compiles every LF in `lfs` carrying a supported LfCompileSpec; the rest
/// stay interpreted (slot_of_lf[j] == -1). Deterministic: the same LF set
/// always yields a byte-identical program. Never fails — an uncompilable
/// spec (e.g. a regex beyond literal alternations) just leaves its LF on
/// the interpreted path.
std::shared_ptr<const CompiledLfProgram> CompileLfSet(
    const LabelingFunctionSet& lfs);

/// CompileLfSet through a small process-wide memo keyed by the set's
/// fingerprint vector, so appliers hitting the same LF set share one
/// program instead of recompiling per Apply call. Thread-safe.
std::shared_ptr<const CompiledLfProgram> GetOrCompileProgram(
    const LabelingFunctionSet& lfs);

/// True iff `program` can serve `lfs`: same column count and every compiled
/// entry's fingerprint matches the live column it claims to back.
bool ProgramMatchesLfSet(const CompiledLfProgram& program,
                         const LabelingFunctionSet& lfs);

}  // namespace snorkel

#endif  // SNORKEL_LF_COMPILED_PROGRAM_H_
