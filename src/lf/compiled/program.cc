#include "lf/compiled/program.h"

#include <algorithm>
#include <deque>
#include <list>
#include <mutex>
#include <set>
#include <utility>

#include "lf/labeling_function.h"
#include "text/stemmer.h"
#include "util/binary_io.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace snorkel {

namespace {

constexpr uint32_t kProgramFormatVersion = 1;

void WriteU32Vec(BinaryWriter* writer, const std::vector<uint32_t>& values) {
  writer->WriteU64(values.size());
  for (uint32_t v : values) writer->WriteU32(v);
}

std::vector<uint32_t> ReadU32Vec(BinaryReader* reader) {
  std::vector<uint32_t> values;
  uint64_t count = reader->ReadU64();
  if (!reader->ok()) return values;
  // A corrupted count larger than the remaining bytes latches the reader's
  // IOError on the first out-of-bounds element; cap the reserve so hostile
  // counts can't trigger a huge allocation first.
  values.reserve(static_cast<size_t>(
      std::min<uint64_t>(count, reader->remaining() / sizeof(uint32_t))));
  for (uint64_t i = 0; i < count; ++i) {
    values.push_back(reader->ReadU32());
    if (!reader->ok()) {
      values.clear();
      break;
    }
  }
  return values;
}

void WriteAutomaton(BinaryWriter* writer, const FlatAutomaton& ac) {
  WriteU32Vec(writer, ac.edge_offsets);
  WriteU32Vec(writer, ac.edge_symbols);
  WriteU32Vec(writer, ac.edge_targets);
  WriteU32Vec(writer, ac.fail);
  WriteU32Vec(writer, ac.out_offsets);
  WriteU32Vec(writer, ac.out_patterns);
}

FlatAutomaton ReadAutomaton(BinaryReader* reader) {
  FlatAutomaton ac;
  ac.edge_offsets = ReadU32Vec(reader);
  ac.edge_symbols = ReadU32Vec(reader);
  ac.edge_targets = ReadU32Vec(reader);
  ac.fail = ReadU32Vec(reader);
  ac.out_offsets = ReadU32Vec(reader);
  ac.out_patterns = ReadU32Vec(reader);
  return ac;
}

/// Structural validation of a decoded automaton against the pattern count it
/// must reference; hostile payloads must not be able to cause out-of-bounds
/// reads at match time.
bool ValidAutomaton(const FlatAutomaton& ac, size_t num_patterns) {
  size_t n = ac.fail.size();
  if (n == 0) return false;  // Always at least the root.
  if (ac.edge_offsets.size() != n + 1 || ac.out_offsets.size() != n + 1) {
    return false;
  }
  if (ac.edge_offsets.front() != 0 || ac.out_offsets.front() != 0) {
    return false;
  }
  if (ac.edge_offsets.back() != ac.edge_symbols.size() ||
      ac.out_offsets.back() != ac.out_patterns.size()) {
    return false;
  }
  if (ac.edge_targets.size() != ac.edge_symbols.size()) return false;
  for (size_t i = 0; i < n; ++i) {
    if (ac.edge_offsets[i] > ac.edge_offsets[i + 1]) return false;
    if (ac.out_offsets[i] > ac.out_offsets[i + 1]) return false;
    if (ac.fail[i] >= n) return false;
    // Sorted edges are what Step()'s binary search assumes.
    for (uint32_t e = ac.edge_offsets[i] + 1; e < ac.edge_offsets[i + 1];
         ++e) {
      if (ac.edge_symbols[e - 1] >= ac.edge_symbols[e]) return false;
    }
  }
  if (ac.fail[0] != 0) return false;
  for (uint32_t target : ac.edge_targets) {
    if (target >= n) return false;
  }
  for (uint32_t pattern : ac.out_patterns) {
    if (pattern >= num_patterns) return false;
  }
  return true;
}

/// Accepts exactly the regexes the byte engine reproduces bit-for-bit:
/// alternations of non-empty ASCII literal branches with no metacharacters.
/// Branches come back lowercased (the engine matches case-insensitively by
/// lowering both pattern and text, which is what std::regex::icase does for
/// the ASCII subset).
bool ParseLiteralAlternation(std::string_view regex,
                             std::vector<std::string>* branches) {
  static constexpr std::string_view kMeta = "^$\\.*+?()[]{}";
  std::vector<std::string> out;
  std::string current;
  for (char c : regex) {
    if (c == '|') {
      if (current.empty()) return false;
      out.push_back(std::move(current));
      current.clear();
      continue;
    }
    if (static_cast<unsigned char>(c) >= 0x80) return false;
    if (kMeta.find(c) != std::string_view::npos) return false;
    current.push_back(
        c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  }
  if (current.empty()) return false;
  out.push_back(std::move(current));
  *branches = std::move(out);
  return true;
}

class Interner {
 public:
  explicit Interner(std::vector<std::string>* symbols) : symbols_(symbols) {}

  uint32_t Intern(const std::string& token) {
    auto it = index_.find(token);
    if (it != index_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(symbols_->size());
    symbols_->push_back(token);
    index_.emplace(token, id);
    return id;
  }

 private:
  std::vector<std::string>* symbols_;
  std::map<std::string, uint32_t> index_;  // compile-time only; order unused
};

}  // namespace

uint32_t FlatAutomaton::Step(uint32_t state, uint32_t symbol) const {
  for (;;) {
    uint32_t lo = edge_offsets[state];
    uint32_t hi = edge_offsets[state + 1];
    const uint32_t* first = edge_symbols.data() + lo;
    const uint32_t* last = edge_symbols.data() + hi;
    const uint32_t* it = std::lower_bound(first, last, symbol);
    if (it != last && *it == symbol) {
      return edge_targets[lo + static_cast<uint32_t>(it - first)];
    }
    if (state == 0) return 0;
    state = fail[state];
  }
}

AutomatonBuilder::AutomatonBuilder() : nodes_(1) {}

uint32_t AutomatonBuilder::AddPattern(const std::vector<uint32_t>& symbols) {
  uint32_t node = 0;
  for (uint32_t symbol : symbols) {
    auto [it, inserted] = nodes_[node].edges.try_emplace(
        symbol, static_cast<uint32_t>(nodes_.size()));
    if (inserted) nodes_.emplace_back();
    node = it->second;
  }
  uint32_t id = static_cast<uint32_t>(num_patterns_++);
  nodes_[node].ends.push_back(id);
  return id;
}

FlatAutomaton AutomatonBuilder::Build() const {
  size_t n = nodes_.size();
  FlatAutomaton ac;
  ac.fail.assign(n, 0);
  ac.edge_offsets.reserve(n + 1);
  ac.out_offsets.reserve(n + 1);

  // Flatten the goto function (trie node ids are insertion order, edges in
  // symbol order via std::map — all deterministic).
  ac.edge_offsets.push_back(0);
  for (const Node& node : nodes_) {
    for (const auto& [symbol, target] : node.edges) {
      ac.edge_symbols.push_back(symbol);
      ac.edge_targets.push_back(target);
    }
    ac.edge_offsets.push_back(static_cast<uint32_t>(ac.edge_symbols.size()));
  }

  // BFS failure links; outputs are closed through the failure chain as we
  // go (a node's fail target is always visited first), so matching never
  // walks fail links to emit outputs.
  std::vector<std::vector<uint32_t>> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = nodes_[i].ends;
  std::deque<uint32_t> queue;
  for (const auto& [symbol, target] : nodes_[0].edges) {
    ac.fail[target] = 0;
    queue.push_back(target);
  }
  while (!queue.empty()) {
    uint32_t node = queue.front();
    queue.pop_front();
    const std::vector<uint32_t>& closure = out[ac.fail[node]];
    out[node].insert(out[node].end(), closure.begin(), closure.end());
    for (const auto& [symbol, target] : nodes_[node].edges) {
      ac.fail[target] = ac.Step(ac.fail[node], symbol);
      queue.push_back(target);
    }
  }

  ac.out_offsets.push_back(0);
  for (size_t i = 0; i < n; ++i) {
    ac.out_patterns.insert(ac.out_patterns.end(), out[i].begin(),
                           out[i].end());
    ac.out_offsets.push_back(static_cast<uint32_t>(ac.out_patterns.size()));
  }
  return ac;
}

void CompiledLfProgram::Finalize() {
  slot_of_lf.assign(num_lfs, -1);
  for (size_t slot = 0; slot < entries.size(); ++slot) {
    slot_of_lf[entries[slot].lf_index] = static_cast<int32_t>(slot);
    if (entries[slot].kind == LfSpecKind::kDocumentKeyword) {
      has_doc_scope = true;
    }
  }
  for (uint32_t encoded : token_ac.edge_symbols) {
    if ((encoded & 1u) == 0) {
      needs_lower_pass = true;
    } else {
      needs_stem_pass = true;
    }
  }
  symbol_index_.reserve(symbols.size());
  for (size_t i = 0; i < symbols.size(); ++i) {
    symbol_index_.emplace(symbols[i], static_cast<uint32_t>(i));
  }
}

std::string CompiledLfProgram::Encode() const {
  BinaryWriter writer;
  writer.WriteU32(kProgramFormatVersion);
  writer.WriteU64(num_lfs);
  writer.WriteU64(entries.size());
  for (const CompiledLfEntry& e : entries) {
    writer.WriteU64(e.fingerprint);
    writer.WriteU32(e.lf_index);
    writer.WriteU32(static_cast<uint32_t>(e.kind));
    writer.WriteI32(e.label);
    writer.WriteI32(e.label_reverse);
    writer.WriteU32(e.window);
    writer.WriteU64(e.max_tokens);
  }
  writer.WriteStringVector(symbols);
  // Token patterns are single symbols: (slot, encoded symbol).
  writer.WriteU64(token_pattern_slots.size());
  for (size_t p = 0; p < token_pattern_slots.size(); ++p) {
    writer.WriteU32(token_pattern_slots[p]);
  }
  writer.WriteU64(byte_pattern_slots.size());
  for (size_t p = 0; p < byte_pattern_slots.size(); ++p) {
    writer.WriteU32(byte_pattern_slots[p]);
    writer.WriteU32(byte_pattern_lengths[p]);
  }
  WriteAutomaton(&writer, token_ac);
  WriteAutomaton(&writer, byte_ac);
  return writer.TakeBuffer();
}

Result<std::shared_ptr<const CompiledLfProgram>> CompiledLfProgram::Decode(
    std::string_view payload) {
  BinaryReader reader(payload);
  uint32_t version = reader.ReadU32();
  if (reader.ok() && version != kProgramFormatVersion) {
    return Status::IOError("compiled LF program: unsupported format version " +
                           std::to_string(version));
  }
  auto program = std::make_shared<CompiledLfProgram>();
  program->num_lfs = reader.ReadU64();
  uint64_t num_entries = reader.ReadU64();
  if (reader.ok() && num_entries > program->num_lfs) {
    return Status::IOError(
        "compiled LF program: more compiled entries than LF columns");
  }
  for (uint64_t i = 0; reader.ok() && i < num_entries; ++i) {
    CompiledLfEntry e;
    e.fingerprint = reader.ReadU64();
    e.lf_index = reader.ReadU32();
    uint32_t kind = reader.ReadU32();
    e.label = reader.ReadI32();
    e.label_reverse = reader.ReadI32();
    e.window = reader.ReadU32();
    e.max_tokens = reader.ReadU64();
    if (!reader.ok()) break;
    if (kind > static_cast<uint32_t>(LfSpecKind::kDistance)) {
      return Status::IOError("compiled LF program: unknown entry kind " +
                             std::to_string(kind));
    }
    e.kind = static_cast<LfSpecKind>(kind);
    if (e.lf_index >= program->num_lfs) {
      return Status::IOError(
          "compiled LF program: entry references LF column out of range");
    }
    program->entries.push_back(std::move(e));
  }
  program->symbols = reader.ReadStringVector();
  uint64_t num_token_patterns = reader.ReadU64();
  for (uint64_t p = 0; reader.ok() && p < num_token_patterns; ++p) {
    program->token_pattern_slots.push_back(reader.ReadU32());
  }
  uint64_t num_byte_patterns = reader.ReadU64();
  for (uint64_t p = 0; reader.ok() && p < num_byte_patterns; ++p) {
    program->byte_pattern_slots.push_back(reader.ReadU32());
    program->byte_pattern_lengths.push_back(reader.ReadU32());
  }
  program->token_ac = ReadAutomaton(&reader);
  program->byte_ac = ReadAutomaton(&reader);
  if (!reader.ok()) {
    return Status::IOError("compiled LF program: truncated payload (" +
                           reader.status().message() + ")");
  }

  for (uint32_t slot : program->token_pattern_slots) {
    if (slot >= program->entries.size()) {
      return Status::IOError(
          "compiled LF program: token pattern references bad slot");
    }
  }
  for (size_t p = 0; p < program->byte_pattern_slots.size(); ++p) {
    if (program->byte_pattern_slots[p] >= program->entries.size() ||
        program->byte_pattern_lengths[p] == 0) {
      return Status::IOError(
          "compiled LF program: byte pattern references bad slot or length");
    }
  }
  if (!ValidAutomaton(program->token_ac,
                      program->token_pattern_slots.size()) ||
      !ValidAutomaton(program->byte_ac, program->byte_pattern_slots.size())) {
    return Status::IOError("compiled LF program: malformed automaton");
  }
  uint32_t symbol_limit = static_cast<uint32_t>(program->symbols.size()) * 2;
  for (uint32_t encoded : program->token_ac.edge_symbols) {
    if (encoded >= symbol_limit) {
      return Status::IOError(
          "compiled LF program: token symbol out of intern-table range");
    }
  }
  for (uint32_t byte : program->byte_ac.edge_symbols) {
    if (byte > 0xff) {
      return Status::IOError("compiled LF program: byte symbol out of range");
    }
  }
  program->Finalize();
  return std::shared_ptr<const CompiledLfProgram>(std::move(program));
}

std::shared_ptr<const CompiledLfProgram> CompileLfSet(
    const LabelingFunctionSet& lfs) {
  auto program = std::make_shared<CompiledLfProgram>();
  program->num_lfs = lfs.size();
  Interner interner(&program->symbols);
  AutomatonBuilder token_builder;
  AutomatonBuilder byte_builder;

  for (size_t j = 0; j < lfs.size(); ++j) {
    const std::shared_ptr<const LfCompileSpec>& spec =
        lfs.at(j).compile_spec();
    if (!spec) continue;

    CompiledLfEntry entry;
    entry.fingerprint = lfs.at(j).fingerprint();
    entry.lf_index = static_cast<uint32_t>(j);
    entry.kind = spec->kind;
    entry.label = spec->label;
    entry.label_reverse = spec->label_reverse;
    entry.window = static_cast<uint32_t>(spec->window);
    entry.max_tokens = spec->max_tokens;
    uint32_t slot = static_cast<uint32_t>(program->entries.size());

    switch (spec->kind) {
      case LfSpecKind::kKeywordBetween:
      case LfSpecKind::kDirectionalKeyword:
      case LfSpecKind::kContextKeyword:
      case LfSpecKind::kSentenceKeyword:
      case LfSpecKind::kDocumentKeyword: {
        // Mirror BuildKeywordSet exactly: lowercase, optionally stem, and
        // dedupe. Each distinct form becomes one single-symbol pattern in
        // the shared automaton, tagged with its domain bit.
        std::set<uint32_t> seen;
        std::vector<uint32_t> pattern_symbols;
        for (const std::string& keyword : spec->keywords) {
          std::string lower = ToLower(keyword);
          std::string form = spec->stem ? Stemmer::Stem(lower) : lower;
          uint32_t encoded =
              (interner.Intern(form) << 1) | (spec->stem ? 1u : 0u);
          if (!seen.insert(encoded).second) continue;
          pattern_symbols.assign(1, encoded);
          token_builder.AddPattern(pattern_symbols);
          program->token_pattern_slots.push_back(slot);
        }
        break;
      }
      case LfSpecKind::kRegexBetween: {
        std::vector<std::string> branches;
        if (!ParseLiteralAlternation(spec->regex, &branches)) {
          continue;  // Beyond the fused-DFA subset: stays interpreted.
        }
        for (const std::string& branch : branches) {
          std::vector<uint32_t> bytes;
          bytes.reserve(branch.size());
          for (char c : branch) {
            bytes.push_back(static_cast<unsigned char>(c));
          }
          byte_builder.AddPattern(bytes);
          program->byte_pattern_slots.push_back(slot);
          program->byte_pattern_lengths.push_back(
              static_cast<uint32_t>(branch.size()));
        }
        break;
      }
      case LfSpecKind::kDistance:
        break;  // Pure span arithmetic; no patterns.
    }
    program->entries.push_back(std::move(entry));
  }

  program->token_ac = token_builder.Build();
  program->byte_ac = byte_builder.Build();
  program->Finalize();
  return program;
}

std::shared_ptr<const CompiledLfProgram> GetOrCompileProgram(
    const LabelingFunctionSet& lfs) {
  uint64_t key = Fnv1a64("lfcp");
  key = HashCombine(key, lfs.size());
  for (size_t j = 0; j < lfs.size(); ++j) {
    key = HashCombine(key, lfs.at(j).fingerprint());
  }

  static std::mutex mu;
  static constexpr size_t kMaxCached = 32;
  // FIFO of (key, program); tiny, so linear scans beat a map + list.
  static std::list<std::pair<uint64_t, std::shared_ptr<const CompiledLfProgram>>>&
      cache = *new std::list<
          std::pair<uint64_t, std::shared_ptr<const CompiledLfProgram>>>;

  {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& [cached_key, cached_program] : cache) {
      if (cached_key == key && ProgramMatchesLfSet(*cached_program, lfs)) {
        return cached_program;
      }
    }
  }
  std::shared_ptr<const CompiledLfProgram> program = CompileLfSet(lfs);
  std::lock_guard<std::mutex> lock(mu);
  cache.emplace_front(key, program);
  while (cache.size() > kMaxCached) cache.pop_back();
  return program;
}

bool ProgramMatchesLfSet(const CompiledLfProgram& program,
                         const LabelingFunctionSet& lfs) {
  if (program.num_lfs != lfs.size()) return false;
  for (const CompiledLfEntry& entry : program.entries) {
    if (entry.lf_index >= lfs.size()) return false;
    if (lfs.at(entry.lf_index).fingerprint() != entry.fingerprint) {
      return false;
    }
  }
  return true;
}

}  // namespace snorkel
