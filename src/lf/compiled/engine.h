#ifndef SNORKEL_LF_COMPILED_ENGINE_H_
#define SNORKEL_LF_COMPILED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "data/candidate.h"
#include "data/context.h"
#include "lf/compiled/program.h"

namespace snorkel {

/// Automaton scan results for one sentence under one program. Immutable
/// once built; shared between concurrent batches through the process-wide
/// scan cache (see below).
struct LfSentenceScan {
  /// Hits grouped by slot: slot s owns hits[hit_offsets[s] ..
  /// hit_offsets[s+1]), each packed (a << 32) | b — the half-open token
  /// interval [a, b] the match covers — sorted ascending (by a, then b).
  std::vector<uint32_t> hit_offsets;
  std::vector<uint64_t> hits;
  /// Per-slot "any hit in this sentence" bitset (sentence scope).
  std::vector<uint64_t> any_bits;
};

/// Counters for the process-wide compiled-scan cache. `hits`/`misses` count
/// sentence-level lookups; `bytes`/`entries` describe current residency.
struct CompiledScanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t bytes = 0;
  size_t entries = 0;
};

CompiledScanCacheStats GetCompiledScanCacheStats();

/// Drops every cached scan (tests; also frees memory after a corpus churn).
void ClearCompiledScanCache();

/// One request's worth of compiled LF execution: resolves every distinct
/// (doc, sentence) referenced by the candidate batch to its automaton scan
/// — through a process-wide cache keyed by (program, corpus identity), so a
/// corpus served repeatedly is scanned once, not once per request — then
/// answers per-(row, LF) votes with range checks over the precomputed hit
/// stream. The cache key uses Corpus::identity(), which is bumped by every
/// mutable corpus access, so stale or address-aliased text can never be
/// served; evictions are LRU under a fixed byte budget. Construction is
/// serial and deterministic; Eval() is const and safe to call from any
/// number of threads concurrently — which is how the appliers use it
/// (build once, evaluate rows in parallel).
///
/// Bitwise contract: Eval(slot, i) returns exactly what the interpreted
/// lambda of the LF backing `slot` would return on row i.
class CompiledLfBatch {
 public:
  /// `rows[i]` may be null for i < begin (those rows are never evaluated);
  /// candidates must outlive the batch. `begin` lets the incremental
  /// applier skip scan work for cached row prefixes.
  CompiledLfBatch(std::shared_ptr<const CompiledLfProgram> program,
                  const Corpus& corpus,
                  const std::vector<const Candidate*>& rows,
                  size_t begin = 0);

  const CompiledLfProgram& program() const { return *program_; }

  /// Compiled vote of entry `slot` on row i (i >= begin).
  Label Eval(uint32_t slot, size_t i) const;

 private:
  static constexpr uint32_t kNoToken = 0xffffffffu;

  struct RowCtx {
    uint32_t scan = 0;           // index into scans_
    int32_t doc_index = -1;      // index into doc_bits_, or -1
    uint32_t first_start = 0;    // positionally-first span
    uint32_t first_end = 0;
    uint32_t second_start = 0;   // positionally-second span
    uint32_t second_end = 0;
    uint32_t sent_size = 0;
    /// First non-empty token of the between range, or kNoToken. Byte-domain
    /// (regex) containment starts here instead of at first_end: TextBetween
    /// suppresses separators after leading empty tokens, so the joined text
    /// begins at this token's bytes.
    uint32_t between_f = kNoToken;
    bool span1_first = true;
  };

  /// Symbols of one distinct raw token, resolved once per batch.
  struct TokenSymbols {
    uint32_t lower_encoded = CompiledLfProgram::kNoSymbol;
    uint32_t stem_encoded = CompiledLfProgram::kNoSymbol;
  };
  using TokenMemo = std::unordered_map<std::string_view, TokenSymbols>;

  void ScanSentence(const Sentence& sentence, TokenMemo* memo,
                    LfSentenceScan* scan) const;
  bool HasHitIn(const LfSentenceScan& scan, uint32_t slot, uint32_t lo,
                uint32_t hi) const;

  std::shared_ptr<const CompiledLfProgram> program_;
  size_t slot_words_ = 0;  // u64 words per any-bits block
  std::vector<std::shared_ptr<const LfSentenceScan>> scans_;
  /// Per-doc "any hit in this document" bitsets (document scope), each
  /// slot_words_ u64 words.
  std::vector<std::shared_ptr<const std::vector<uint64_t>>> doc_bits_;
  std::vector<RowCtx> rows_;
};

}  // namespace snorkel

#endif  // SNORKEL_LF_COMPILED_ENGINE_H_
