#include "lf/compiled/engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <utility>

#include "text/stemmer.h"
#include "util/string_util.h"

namespace snorkel {

namespace {

uint64_t PackInterval(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

size_t ScanBytes(const LfSentenceScan& scan) {
  return sizeof(LfSentenceScan) +
         scan.hit_offsets.capacity() * sizeof(uint32_t) +
         scan.hits.capacity() * sizeof(uint64_t) +
         scan.any_bits.capacity() * sizeof(uint64_t) + 64;
}

/// Process-wide scan cache: (program, corpus identity) -> per-sentence
/// automaton scans and per-doc any-hit bitsets. Entries pin their program
/// (so a program address can never be reused while its scans are cached)
/// and key corpora by Corpus::identity() (fresh per object and bumped on
/// mutation, so a cached scan can never describe stale or aliased text).
/// Whole (program, corpus) entries are evicted LRU once the byte budget is
/// exceeded; in-flight batches keep shared_ptrs to the scans they use, so
/// eviction never invalidates a running request.
constexpr size_t kScanCacheBudgetBytes = 64u << 20;

struct ScanCacheEntry {
  std::shared_ptr<const CompiledLfProgram> program;  // pin
  std::mutex mu;
  // (doc << 32) | sentence -> scan; guarded by mu.
  std::unordered_map<uint64_t, std::shared_ptr<const LfSentenceScan>> scans;
  // doc -> OR of that doc's any_bits blocks; guarded by mu.
  std::unordered_map<uint32_t,
                     std::shared_ptr<const std::vector<uint64_t>>> doc_bits;
  size_t bytes = 0;      // guarded by mu
  bool evicted = false;  // guarded by mu; stops byte accounting after evict
  uint64_t tick = 0;     // guarded by the cache-wide mutex
};

class ScanCache {
 public:
  static ScanCache& Instance() {
    static ScanCache* cache = new ScanCache();
    return *cache;
  }

  std::shared_ptr<ScanCacheEntry> GetEntry(
      uint64_t corpus_identity,
      const std::shared_ptr<const CompiledLfProgram>& program) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] =
        entries_.try_emplace(Key{corpus_identity, program.get()});
    if (inserted) {
      it->second = std::make_shared<ScanCacheEntry>();
      it->second->program = program;
    }
    it->second->tick = ++tick_;
    return it->second;
  }

  /// Accounts freshly inserted scan bytes; evicts LRU entries over budget.
  /// Call with no entry mutex held.
  void Credit(size_t delta) {
    if (total_bytes_.fetch_add(delta, std::memory_order_relaxed) + delta <=
        kScanCacheBudgetBytes) {
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    while (total_bytes_.load(std::memory_order_relaxed) >
               kScanCacheBudgetBytes &&
           entries_.size() > 1) {
      auto victim = entries_.begin();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second->tick < victim->second->tick) victim = it;
      }
      size_t freed;
      {
        std::lock_guard<std::mutex> entry_lock(victim->second->mu);
        freed = victim->second->bytes;
        victim->second->evicted = true;
      }
      total_bytes_.fetch_sub(freed, std::memory_order_relaxed);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      entries_.erase(victim);
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    total_bytes_.store(0, std::memory_order_relaxed);
  }

  CompiledScanCacheStats Stats() {
    CompiledScanCacheStats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    stats.bytes = total_bytes_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    stats.entries = entries_.size();
    return stats;
  }

  void CountHit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void CountMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }

 private:
  struct Key {
    uint64_t corpus_identity;
    const CompiledLfProgram* program;
    bool operator==(const Key& other) const {
      return corpus_identity == other.corpus_identity &&
             program == other.program;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      uint64_t h = key.corpus_identity * 0x9e3779b97f4a7c15ull;
      h ^= reinterpret_cast<uintptr_t>(key.program) + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<ScanCacheEntry>, KeyHash> entries_;
  uint64_t tick_ = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<size_t> total_bytes_{0};
};

}  // namespace

CompiledScanCacheStats GetCompiledScanCacheStats() {
  return ScanCache::Instance().Stats();
}

void ClearCompiledScanCache() { ScanCache::Instance().Clear(); }

CompiledLfBatch::CompiledLfBatch(
    std::shared_ptr<const CompiledLfProgram> program, const Corpus& corpus,
    const std::vector<const Candidate*>& rows, size_t begin)
    : program_(std::move(program)) {
  const CompiledLfProgram& p = *program_;
  slot_words_ = (p.entries.size() + 63) / 64;
  rows_.resize(rows.size());
  TokenMemo memo;
  ScanCache& cache = ScanCache::Instance();
  std::shared_ptr<ScanCacheEntry> entry =
      cache.GetEntry(corpus.identity(), program_);
  std::unordered_map<uint64_t, uint32_t> scan_index;  // (doc, sent) -> scan

  // Cached-or-scanned lookup for one sentence. Misses scan outside the
  // entry lock (two threads may race to scan the same sentence; the scan is
  // deterministic, so the first insert wins and both results are
  // bit-identical).
  auto get_scan =
      [&](uint64_t key,
          const Sentence& sentence) -> std::shared_ptr<const LfSentenceScan> {
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      auto it = entry->scans.find(key);
      if (it != entry->scans.end()) {
        cache.CountHit();
        return it->second;
      }
    }
    cache.CountMiss();
    auto scan = std::make_shared<LfSentenceScan>();
    ScanSentence(sentence, &memo, scan.get());
    size_t delta = 0;
    std::shared_ptr<const LfSentenceScan> out;
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      auto [it, inserted] = entry->scans.try_emplace(key, std::move(scan));
      out = it->second;
      if (inserted && !entry->evicted) {
        delta = ScanBytes(*out);
        entry->bytes += delta;
      }
    }
    if (delta > 0) cache.Credit(delta);
    return out;
  };

  for (size_t i = begin; i < rows.size(); ++i) {
    const Candidate& c = *rows[i];
    uint64_t key =
        (static_cast<uint64_t>(c.span1.doc) << 32) | c.span1.sentence;
    const Sentence& sentence =
        corpus.document(c.span1.doc).sentences[c.span1.sentence];
    auto [it, inserted] =
        scan_index.try_emplace(key, static_cast<uint32_t>(scans_.size()));
    if (inserted) scans_.push_back(get_scan(key, sentence));

    RowCtx& ctx = rows_[i];
    ctx.scan = it->second;
    ctx.span1_first = c.span1.word_start <= c.span2.word_start;
    const Span& first = ctx.span1_first ? c.span1 : c.span2;
    const Span& second = ctx.span1_first ? c.span2 : c.span1;
    ctx.first_start = first.word_start;
    ctx.first_end = first.word_end;
    ctx.second_start = second.word_start;
    ctx.second_end = second.word_end;
    ctx.sent_size = static_cast<uint32_t>(sentence.words.size());
    if (!p.byte_pattern_slots.empty()) {
      uint32_t hi = std::min(ctx.second_start, ctx.sent_size);
      for (uint32_t t = ctx.first_end; t < hi; ++t) {
        if (!sentence.words[t].empty()) {
          ctx.between_f = t;
          break;
        }
      }
    }
  }

  if (p.has_doc_scope) {
    std::unordered_map<uint32_t, int32_t> doc_blocks;  // doc -> doc_bits_ idx
    for (size_t i = begin; i < rows.size(); ++i) {
      uint32_t doc_id = rows[i]->span1.doc;
      auto [it, inserted] = doc_blocks.try_emplace(
          doc_id, static_cast<int32_t>(doc_bits_.size()));
      if (inserted) {
        std::shared_ptr<const std::vector<uint64_t>> block;
        {
          std::lock_guard<std::mutex> lock(entry->mu);
          auto bit = entry->doc_bits.find(doc_id);
          if (bit != entry->doc_bits.end()) block = bit->second;
        }
        if (block == nullptr) {
          // OR the any-match bits of every sentence in the document (also
          // sentences holding no candidate of this batch).
          auto bits = std::make_shared<std::vector<uint64_t>>(slot_words_, 0);
          const Document& doc = corpus.document(doc_id);
          for (size_t s = 0; s < doc.sentences.size(); ++s) {
            uint64_t key = (static_cast<uint64_t>(doc_id) << 32) | s;
            std::shared_ptr<const LfSentenceScan> scan =
                get_scan(key, doc.sentences[s]);
            for (size_t w = 0; w < slot_words_; ++w) {
              (*bits)[w] |= scan->any_bits[w];
            }
          }
          size_t delta = 0;
          {
            std::lock_guard<std::mutex> lock(entry->mu);
            auto [bit, added] =
                entry->doc_bits.try_emplace(doc_id, std::move(bits));
            block = bit->second;
            if (added && !entry->evicted) {
              delta = block->capacity() * sizeof(uint64_t) + 64;
              entry->bytes += delta;
            }
          }
          if (delta > 0) cache.Credit(delta);
        }
        doc_bits_.push_back(std::move(block));
      }
      rows_[i].doc_index = it->second;
    }
  }
}

void CompiledLfBatch::ScanSentence(const Sentence& sentence, TokenMemo* memo,
                                   LfSentenceScan* scan) const {
  const CompiledLfProgram& p = *program_;
  size_t num_slots = p.entries.size();
  scan->any_bits.assign(slot_words_, 0);
  size_t num_words = sentence.words.size();
  std::vector<std::pair<uint32_t, uint64_t>> raw;  // (slot, packed interval)

  auto record = [&](uint32_t slot, uint32_t a, uint32_t b) {
    raw.emplace_back(slot, PackInterval(a, b));
    scan->any_bits[slot >> 6] |= 1ull << (slot & 63);
  };

  if (!p.token_pattern_slots.empty() && num_words > 0) {
    // Resolve each distinct raw token to its (lower, stem) symbols once per
    // batch; the walks below then touch only u32 ids.
    std::vector<const TokenSymbols*> symbols(num_words);
    for (size_t t = 0; t < num_words; ++t) {
      const std::string& word = sentence.words[t];
      auto it = memo->find(word);
      if (it == memo->end()) {
        TokenSymbols resolved;
        std::string lower = ToLower(word);
        uint32_t lower_id = p.LookupSymbol(lower);
        if (lower_id != CompiledLfProgram::kNoSymbol) {
          resolved.lower_encoded = lower_id << 1;
        }
        if (p.needs_stem_pass) {
          uint32_t stem_id = p.LookupSymbol(Stemmer::StemCached(lower));
          if (stem_id != CompiledLfProgram::kNoSymbol) {
            resolved.stem_encoded = (stem_id << 1) | 1u;
          }
        }
        it = memo->emplace(std::string_view(word), resolved).first;
      }
      symbols[t] = &it->second;
    }

    auto walk = [&](bool stem_domain) {
      uint32_t state = 0;
      for (size_t t = 0; t < num_words; ++t) {
        uint32_t symbol = stem_domain ? symbols[t]->stem_encoded
                                      : symbols[t]->lower_encoded;
        if (symbol == CompiledLfProgram::kNoSymbol) {
          state = 0;  // Unknown symbol: no edge anywhere; reset to root.
          continue;
        }
        state = p.token_ac.Step(state, symbol);
        for (uint32_t o = p.token_ac.out_offsets[state];
             o < p.token_ac.out_offsets[state + 1]; ++o) {
          uint32_t pattern = p.token_ac.out_patterns[o];
          // Token patterns are single symbols, so the hit covers [t, t].
          record(p.token_pattern_slots[pattern], static_cast<uint32_t>(t),
                 static_cast<uint32_t>(t));
        }
      }
    };
    if (p.needs_lower_pass) walk(/*stem_domain=*/false);
    if (p.needs_stem_pass) walk(/*stem_domain=*/true);
  }

  if (!p.byte_pattern_slots.empty() && num_words > 0) {
    // Byte positions in the space-joined lowercased sentence; token t's
    // first byte is byte_starts[t], and the separator before it (t > 0) is
    // byte_starts[t] - 1. Strictly increasing, so interval mapping is a
    // binary search.
    std::vector<size_t> byte_starts(num_words);
    size_t total = 0;
    for (size_t t = 0; t < num_words; ++t) {
      byte_starts[t] = total + (t > 0 ? 1 : 0);
      total = byte_starts[t] + sentence.words[t].size();
    }

    uint32_t state = 0;
    size_t pos = 0;
    auto feed = [&](char c, uint32_t end_token) {
      state = p.byte_ac.Step(state, static_cast<unsigned char>(c));
      for (uint32_t o = p.byte_ac.out_offsets[state];
           o < p.byte_ac.out_offsets[state + 1]; ++o) {
        uint32_t pattern = p.byte_ac.out_patterns[o];
        size_t start_byte = pos + 1 - p.byte_pattern_lengths[pattern];
        // Token whose range (own bytes plus trailing separator) holds the
        // start byte: a match starting on the separator between u and u+1
        // maps to u, so containment a >= lo keeps separator-led matches
        // that begin inside the between text and drops the one just before
        // it.
        uint32_t a = static_cast<uint32_t>(
            std::upper_bound(byte_starts.begin(), byte_starts.end(),
                             start_byte) -
            byte_starts.begin() - 1);
        record(p.byte_pattern_slots[pattern], a, end_token);
      }
      ++pos;
    };
    for (size_t t = 0; t < num_words; ++t) {
      if (t > 0) feed(' ', static_cast<uint32_t>(t));
      for (char c : sentence.words[t]) {
        feed(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c,
             static_cast<uint32_t>(t));
      }
    }
  }

  // Group hits by slot (counting sort), then order each slot's hits by
  // (a, b) so containment checks can binary-search on a.
  scan->hit_offsets.assign(num_slots + 1, 0);
  for (const auto& [slot, packed] : raw) scan->hit_offsets[slot + 1]++;
  for (size_t s = 0; s < num_slots; ++s) {
    scan->hit_offsets[s + 1] += scan->hit_offsets[s];
  }
  scan->hits.resize(raw.size());
  std::vector<uint32_t> cursor(scan->hit_offsets.begin(),
                               scan->hit_offsets.end() - 1);
  for (const auto& [slot, packed] : raw) scan->hits[cursor[slot]++] = packed;
  for (size_t s = 0; s < num_slots; ++s) {
    std::sort(scan->hits.begin() + scan->hit_offsets[s],
              scan->hits.begin() + scan->hit_offsets[s + 1]);
  }
}

bool CompiledLfBatch::HasHitIn(const LfSentenceScan& scan, uint32_t slot,
                               uint32_t lo, uint32_t hi) const {
  if (lo >= hi) return false;
  auto begin = scan.hits.begin() + scan.hit_offsets[slot];
  auto end = scan.hits.begin() + scan.hit_offsets[slot + 1];
  for (auto it = std::lower_bound(begin, end, PackInterval(lo, 0));
       it != end; ++it) {
    uint32_t a = static_cast<uint32_t>(*it >> 32);
    if (a >= hi) break;
    uint32_t b = static_cast<uint32_t>(*it);
    if (b < hi) return true;
  }
  return false;
}

Label CompiledLfBatch::Eval(uint32_t slot, size_t i) const {
  const CompiledLfEntry& e = program_->entries[slot];
  const RowCtx& ctx = rows_[i];
  const LfSentenceScan& scan = *scans_[ctx.scan];
  switch (e.kind) {
    case LfSpecKind::kKeywordBetween: {
      uint32_t hi = std::min(ctx.second_start, ctx.sent_size);
      return HasHitIn(scan, slot, ctx.first_end, hi) ? e.label : kAbstain;
    }
    case LfSpecKind::kDirectionalKeyword: {
      uint32_t hi = std::min(ctx.second_start, ctx.sent_size);
      if (!HasHitIn(scan, slot, ctx.first_end, hi)) return kAbstain;
      return ctx.span1_first ? e.label : e.label_reverse;
    }
    case LfSpecKind::kContextKeyword: {
      uint32_t left_lo =
          ctx.first_start >= e.window ? ctx.first_start - e.window : 0;
      if (HasHitIn(scan, slot, left_lo, ctx.first_start)) return e.label;
      uint32_t right_hi = static_cast<uint32_t>(
          std::min<uint64_t>(static_cast<uint64_t>(ctx.second_end) + e.window,
                             ctx.sent_size));
      return HasHitIn(scan, slot, ctx.second_end, right_hi) ? e.label
                                                            : kAbstain;
    }
    case LfSpecKind::kSentenceKeyword:
      return (scan.any_bits[slot >> 6] >> (slot & 63)) & 1 ? e.label
                                                           : kAbstain;
    case LfSpecKind::kDocumentKeyword: {
      if (ctx.doc_index < 0) return kAbstain;
      uint64_t word = (*doc_bits_[ctx.doc_index])[slot >> 6];
      return (word >> (slot & 63)) & 1 ? e.label : kAbstain;
    }
    case LfSpecKind::kRegexBetween: {
      if (ctx.between_f == kNoToken) return kAbstain;
      uint32_t hi = std::min(ctx.second_start, ctx.sent_size);
      return HasHitIn(scan, slot, ctx.between_f, hi) ? e.label : kAbstain;
    }
    case LfSpecKind::kDistance: {
      uint64_t distance = ctx.second_start <= ctx.first_end
                              ? 0
                              : ctx.second_start - ctx.first_end;
      return distance > e.max_tokens ? e.label : kAbstain;
    }
  }
  return kAbstain;
}

}  // namespace snorkel
