#ifndef SNORKEL_LF_COMPILED_SPEC_H_
#define SNORKEL_LF_COMPILED_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace snorkel {

/// The declarative LF families the compiler understands. Everything else
/// (weak classifiers, crowd workers, guarded/first-vote combinators,
/// ontology LFs, arbitrary lambdas) stays on the interpreted path.
enum class LfSpecKind : uint8_t {
  kKeywordBetween = 0,     // keyword in WordsBetween()
  kDirectionalKeyword = 1, // keyword between, label depends on span order
  kContextKeyword = 2,     // keyword within a window left/right of the spans
  kSentenceKeyword = 3,    // keyword anywhere in the sentence
  kDocumentKeyword = 4,    // keyword anywhere in the document
  kRegexBetween = 5,       // regex_search over TextBetween()
  kDistance = 6,           // TokenDistance() > max_tokens
};

/// A declarative description of what a factory-made LF computes, attached to
/// the LabelingFunction at construction. The compiler lowers a set of these
/// into one CompiledLfProgram; the lambda stays authoritative for anything
/// the compiler rejects (e.g. regexes beyond literal alternations).
struct LfCompileSpec {
  LfSpecKind kind = LfSpecKind::kKeywordBetween;
  std::vector<std::string> keywords;  // raw, as passed to the factory
  bool stem = true;                   // keyword families: match stemmed forms
  size_t window = 0;                  // kContextKeyword
  Label label = kAbstain;             // vote on match (forward for directional)
  Label label_reverse = kAbstain;     // kDirectionalKeyword: span2-first vote
  std::string regex;                  // kRegexBetween: the pattern source
  size_t max_tokens = 0;              // kDistance threshold
};

}  // namespace snorkel

#endif  // SNORKEL_LF_COMPILED_SPEC_H_
