#ifndef SNORKEL_LF_DECLARATIVE_H_
#define SNORKEL_LF_DECLARATIVE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "data/knowledge_base.h"
#include "lf/labeling_function.h"

namespace snorkel {

/// The declarative labeling-function library of §2.1: constructors for the
/// most common weak-supervision strategies — patterns, distant supervision,
/// weak classifiers, crowd votes — plus generators that expand a whole
/// resource into many LFs with one call (Example 2.4), and composition
/// combinators.

/// Pattern LF: votes `label` when any of `keywords` appears (after optional
/// stemming) among the tokens between the two spans; abstains otherwise.
LabelingFunction MakeKeywordBetweenLF(std::string name,
                                      std::vector<std::string> keywords,
                                      Label label, bool stem = true);

/// Directional pattern LF (the paper's LF_causes, Example 2.3): when a
/// keyword appears between the spans, votes `label_forward` if span1
/// precedes span2 and `label_reverse` otherwise.
LabelingFunction MakeDirectionalKeywordLF(std::string name,
                                          std::vector<std::string> keywords,
                                          Label label_forward,
                                          Label label_reverse,
                                          bool stem = true);

/// Regex LF (the declarative lf_search of Example 2.3): votes `label` when
/// the ECMAScript regex matches the text between the spans.
LabelingFunction MakeRegexBetweenLF(std::string name, const std::string& regex,
                                    Label label);

/// Context-window LF: votes `label` when a keyword appears within `window`
/// tokens left of the first span or right of the second (structure-based
/// heuristics over the context hierarchy, Table 6).
LabelingFunction MakeContextKeywordLF(std::string name,
                                      std::vector<std::string> keywords,
                                      size_t window, Label label,
                                      bool stem = true);

/// Distance heuristic: votes `label` when the spans are more than
/// `max_tokens` apart (long-range pairs are usually unrelated).
LabelingFunction MakeDistanceLF(std::string name, size_t max_tokens,
                                Label label);

/// Sentence-scope pattern LF: votes `label` when any keyword occurs anywhere
/// in the candidate's sentence. Used for unary (document/report-level)
/// candidates, e.g. radiology report cues (§4.1.2).
LabelingFunction MakeSentenceKeywordLF(std::string name,
                                       std::vector<std::string> keywords,
                                       Label label, bool stem = true);

/// Document-scope pattern LF: votes `label` when any keyword occurs in any
/// sentence of the candidate's document — LFs may reason over the whole
/// context hierarchy, not just the candidate's sentence (Figure 3).
LabelingFunction MakeDocumentKeywordLF(std::string name,
                                       std::vector<std::string> keywords,
                                       Label label, bool stem = true);

/// Distant supervision LF: votes `label` when the candidate's canonical-id
/// pair occurs in `subset` of the KB. When `symmetric`, also checks the
/// reversed pair. The KB must outlive the LF.
LabelingFunction MakeOntologyLF(std::string name, const KnowledgeBase* kb,
                                std::string subset, Label label,
                                bool symmetric = false);

/// Ontology generator (Example 2.4): one LF per (subset -> label) entry,
/// e.g. Ontology(ctd, {"Causes": +1, "Treats": -1}).
std::vector<LabelingFunction> MakeOntologyLFs(
    const std::string& name_prefix, const KnowledgeBase* kb,
    const std::map<std::string, Label>& subset_labels, bool symmetric = false);

/// Weak classifier LF: wraps a scoring function p(y=+1|x) and votes +1 above
/// `upper`, -1 below `lower`, abstaining in between (low-confidence region).
LabelingFunction MakeWeakClassifierLF(
    std::string name, std::function<double(const CandidateView&)> score,
    double lower = 0.4, double upper = 0.6);

/// Crowd-worker LF (§4.1.2 Crowd task): replays one worker's stored votes,
/// keyed by candidate index; missing entries abstain. `votes` is copied.
LabelingFunction MakeCrowdWorkerLF(std::string name,
                                   std::map<size_t, Label> votes);

/// Crowd generator: one LF per worker from a vote table
/// worker -> (candidate index -> label).
std::vector<LabelingFunction> MakeCrowdWorkerLFs(
    const std::string& name_prefix,
    const std::vector<std::map<size_t, Label>>& worker_votes);

/// Combinator: votes like `lf` but abstains unless `guard` returns true.
/// Used to narrow an LF to a sub-population (e.g. only short-range pairs).
LabelingFunction MakeGuardedLF(std::string name, LabelingFunction lf,
                               std::function<bool(const CandidateView&)> guard);

/// Combinator: first non-abstaining vote among `lfs` wins.
LabelingFunction MakeFirstVoteLF(std::string name,
                                 std::vector<LabelingFunction> lfs);

}  // namespace snorkel

#endif  // SNORKEL_LF_DECLARATIVE_H_
