#include "lf/applier.h"

#include <atomic>
#include <optional>
#include <tuple>

#include "lf/compiled/engine.h"
#include "lf/compiled/program.h"
#include "util/thread_pool.h"

namespace snorkel {

LFApplier::LFApplier(Options options)
    : options_(options), pool_(MakeDedicatedPool(options.num_threads)) {}

LFApplier::LFApplier(LFApplier&&) noexcept = default;
LFApplier& LFApplier::operator=(LFApplier&&) noexcept = default;
LFApplier::~LFApplier() = default;

std::vector<CandidateRef> MakeCandidateRefs(
    const std::vector<Candidate>& candidates) {
  std::vector<CandidateRef> refs(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    refs[i] = CandidateRef{&candidates[i], i};
  }
  return refs;
}

Result<LabelMatrix> LFApplier::Apply(
    const LabelingFunctionSet& lfs, const Corpus& corpus,
    const std::vector<Candidate>& candidates, const CancelToken* cancel) const {
  return ApplyRefs(lfs, corpus, MakeCandidateRefs(candidates), cancel);
}

Result<LabelMatrix> LFApplier::ApplyRefs(
    const LabelingFunctionSet& lfs, const Corpus& corpus,
    const std::vector<CandidateRef>& rows, const CancelToken* cancel) const {
  size_t m = rows.size();
  size_t n = lfs.size();

  // Compiled dispatch: one serial pass scans every distinct sentence through
  // the program's shared automata, then the parallel loop below answers
  // compiled columns from the hit stream and only interprets the rest.
  std::shared_ptr<const CompiledLfProgram> program;
  if (options_.use_compiled) {
    if (options_.compiled_program &&
        ProgramMatchesLfSet(*options_.compiled_program, lfs)) {
      program = options_.compiled_program;
    } else {
      program = GetOrCompileProgram(lfs);
    }
    if (program->num_compiled() == 0) program = nullptr;
  }
  std::optional<CompiledLfBatch> batch;
  if (program != nullptr && m > 0) {
    std::vector<const Candidate*> candidates(m);
    for (size_t i = 0; i < m; ++i) candidates[i] = rows[i].candidate;
    batch.emplace(program, corpus, candidates);
  }

  // Per-candidate sparse vote buffers, filled in parallel without locking.
  // Votes are checked against the shared validity rule (core/types.h) as
  // they are produced, so a buggy LF fails the call with ITS name attached
  // (first offender wins) instead of an anonymous matrix-construction error.
  std::vector<std::vector<LabelMatrix::Entry>> votes(m);
  std::atomic<bool> has_error{false};
  std::atomic<size_t> error_col{0};
  std::atomic<Label> error_label{0};
  // Set iff at least one row was skipped because the caller's deadline
  // expired mid-apply — the signal that the result below must be a typed
  // kDeadlineExceeded, not a silently truncated matrix.
  std::atomic<bool> cancelled{false};
  auto label_one = [&](size_t i) {
    // Cooperative cancellation, throttled: the token's latch makes the
    // check a relaxed load after first expiry, and probing the clock only
    // every 64 rows keeps the healthy path free of clock reads.
    if ((i & 63) == 0 && cancel != nullptr && cancel->Expired()) {
      cancelled.store(true, std::memory_order_relaxed);
      return;
    }
    if (cancelled.load(std::memory_order_relaxed)) return;
    CandidateView view(&corpus, rows[i].candidate, rows[i].index);
    for (size_t j = 0; j < n; ++j) {
      int32_t slot = batch ? program->slot_of_lf[j] : -1;
      Label label = slot >= 0 ? batch->Eval(static_cast<uint32_t>(slot), i)
                              : lfs.at(j).Apply(view);
      if (!LabelValidFor(label, options_.cardinality)) {
        bool expected = false;
        if (has_error.compare_exchange_strong(expected, true)) {
          error_col.store(j);
          error_label.store(label);
        }
        return;
      }
      if (label != kAbstain) {
        votes[i].push_back(
            LabelMatrix::Entry{static_cast<uint32_t>(j), label});
      }
    }
  };

  // Shared applier threading convention (util/thread_pool.h): serial
  // inline, this applier's lifetime pool, or the process-wide pool — never
  // a pool spun up per call.
  ParallelApplyRows(pool_.get(), options_.num_threads, 0, m, label_one);

  if (has_error.load()) {
    return Status::InvalidArgument(
        "LF '" + lfs.at(error_col.load()).name() + "' voted " +
        std::to_string(error_label.load()) + ", invalid for cardinality " +
        std::to_string(options_.cardinality));
  }
  if (cancelled.load()) {
    return Status::DeadlineExceeded(
        "request deadline expired during LF application; remaining rows "
        "cancelled");
  }

  // FromTriplets re-validates structurally (belt and suspenders).
  std::vector<std::tuple<size_t, size_t, Label>> triplets;
  for (size_t i = 0; i < m; ++i) {
    for (const auto& e : votes[i]) {
      triplets.emplace_back(i, e.lf, e.label);
    }
  }
  return LabelMatrix::FromTriplets(m, n, triplets, options_.cardinality);
}

}  // namespace snorkel
