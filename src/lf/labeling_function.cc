#include "lf/labeling_function.h"

namespace snorkel {

size_t LabelingFunctionSet::Add(LabelingFunction lf) {
  lfs_.push_back(std::move(lf));
  return lfs_.size() - 1;
}

void LabelingFunctionSet::AddAll(std::vector<LabelingFunction> lfs) {
  for (auto& lf : lfs) lfs_.push_back(std::move(lf));
}

std::vector<std::string> LabelingFunctionSet::Names() const {
  std::vector<std::string> names;
  names.reserve(lfs_.size());
  for (const auto& lf : lfs_) names.push_back(lf.name());
  return names;
}

}  // namespace snorkel
