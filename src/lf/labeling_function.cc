#include "lf/labeling_function.h"

#include "util/hash.h"

namespace snorkel {

LabelingFunction::LabelingFunction(std::string name, Fn fn)
    : name_(std::move(name)),
      fingerprint_(Fnv1a64(name_)),
      fn_(std::move(fn)) {}

LabelingFunction::LabelingFunction(std::string name, std::string version,
                                   Fn fn)
    : name_(std::move(name)),
      fingerprint_(HashCombine(Fnv1a64(name_), Fnv1a64(version))),
      fn_(std::move(fn)) {}

size_t LabelingFunctionSet::Add(LabelingFunction lf) {
  lfs_.push_back(std::move(lf));
  return lfs_.size() - 1;
}

void LabelingFunctionSet::AddAll(std::vector<LabelingFunction> lfs) {
  for (auto& lf : lfs) lfs_.push_back(std::move(lf));
}

std::vector<std::string> LabelingFunctionSet::Names() const {
  std::vector<std::string> names;
  names.reserve(lfs_.size());
  for (const auto& lf : lfs_) names.push_back(lf.name());
  return names;
}

std::vector<uint64_t> LabelingFunctionSet::Fingerprints() const {
  std::vector<uint64_t> fps;
  fps.reserve(lfs_.size());
  for (const auto& lf : lfs_) fps.push_back(lf.fingerprint());
  return fps;
}

}  // namespace snorkel
