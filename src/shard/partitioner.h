#ifndef SNORKEL_SHARD_PARTITIONER_H_
#define SNORKEL_SHARD_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/candidate.h"
#include "lf/applier.h"
#include "net/placement.h"

namespace snorkel {

/// Stable content key of one candidate: a hash of both spans' coordinates
/// and entity metadata. The same candidate hashes to the same key in every
/// process on every platform (FNV-1a over fixed-width fields), which is what
/// lets a fleet of routers agree on candidate→shard placement without any
/// coordination — the DryBell-style contract for horizontal scale-out.
uint64_t CandidateShardKey(const Candidate& candidate);

/// One request's candidates split into per-shard sub-batches, remembering
/// where each sub-batch row came from so per-shard responses can be merged
/// back into request order.
struct ShardedBatch {
  /// Sub-batch of candidates routed to each shard (some may be empty).
  std::vector<std::vector<Candidate>> shard_candidates;
  /// shard_to_request[s][t] = index in the original request of shard s's
  /// t-th sub-batch row.
  std::vector<std::vector<size_t>> shard_to_request;
  size_t total = 0;

  size_t num_shards() const { return shard_candidates.size(); }
};

/// Ref (zero-copy) form of ShardedBatch: sub-batch rows borrow the
/// request's candidates instead of copying them.
struct ShardedRefBatch {
  std::vector<std::vector<CandidateRef>> shard_rows;
  /// shard_to_request[s][t] = position in the original request of shard
  /// s's t-th row (NOT the ref's LF-visible index).
  std::vector<std::vector<size_t>> shard_to_request;
  size_t total = 0;

  size_t num_shards() const { return shard_rows.size(); }
};

/// Hash-partitions request candidates across `num_shards` shards by
/// CandidateShardKey. Placement is a pure function of candidate content and
/// the shard count: re-partitioning the same candidates — in any order, in
/// any batch composition, on any router — lands every candidate on the same
/// shard. Within a shard, sub-batch rows preserve request order.
class CandidatePartitioner {
 public:
  explicit CandidatePartitioner(size_t num_shards)
      : num_shards_(num_shards == 0 ? 1 : num_shards) {}

  size_t num_shards() const { return num_shards_; }

  /// Shard owning `candidate` — the PRIMARY of the replica placement
  /// (ShardPlacement::PrimaryOf), shared with the failover tier so both
  /// agree on primaries.
  size_t ShardOf(const Candidate& candidate) const {
    return ShardPlacement::PrimaryOf(CandidateShardKey(candidate),
                                     num_shards_);
  }

  /// Splits `candidates` into per-shard sub-batches plus the index maps
  /// needed to reassemble responses in request order.
  ShardedBatch Partition(const std::vector<Candidate>& candidates) const;

  /// Zero-copy form: per-shard ref sub-batches that borrow the request's
  /// candidates (16 bytes per row instead of a Candidate copy). Each ref
  /// keeps its caller-visible `index` untouched (what the LFs see), while
  /// `shard_to_request` records positions within `rows` (what the merge
  /// scatters by) — the two differ when the caller's refs carry their own
  /// numbering. The refs are valid only while the referenced candidates
  /// are alive and unmoved.
  ShardedRefBatch PartitionRefs(const std::vector<CandidateRef>& rows) const;

 private:
  size_t num_shards_;
};

}  // namespace snorkel

#endif  // SNORKEL_SHARD_PARTITIONER_H_
