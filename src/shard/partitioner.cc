#include "shard/partitioner.h"

#include "util/hash.h"

namespace snorkel {

namespace {

uint64_t HashSpanFields(uint64_t h, const Span& span) {
  h = HashCombine(h, span.doc);
  h = HashCombine(h, span.sentence);
  h = HashCombine(h, span.word_start);
  h = HashCombine(h, span.word_end);
  h = HashCombine(h, Fnv1a64(span.entity_type));
  h = HashCombine(h, Fnv1a64(span.canonical_id));
  return h;
}

}  // namespace

uint64_t CandidateShardKey(const Candidate& candidate) {
  uint64_t h = Fnv1a64("shard-key");
  h = HashSpanFields(h, candidate.span1);
  h = HashSpanFields(h, candidate.span2);
  return h;
}

ShardedRefBatch CandidatePartitioner::PartitionRefs(
    const std::vector<CandidateRef>& rows) const {
  ShardedRefBatch batch;
  batch.shard_rows.resize(num_shards_);
  batch.shard_to_request.resize(num_shards_);
  batch.total = rows.size();
  std::vector<size_t> counts(num_shards_, 0);
  std::vector<uint32_t> shard_of(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    shard_of[i] = static_cast<uint32_t>(ShardOf(*rows[i].candidate));
    ++counts[shard_of[i]];
  }
  for (size_t s = 0; s < num_shards_; ++s) {
    batch.shard_rows[s].reserve(counts[s]);
    batch.shard_to_request[s].reserve(counts[s]);
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    size_t s = shard_of[i];
    batch.shard_rows[s].push_back(rows[i]);
    batch.shard_to_request[s].push_back(i);
  }
  return batch;
}

ShardedBatch CandidatePartitioner::Partition(
    const std::vector<Candidate>& candidates) const {
  // One placement implementation: partition as refs, then materialize the
  // owned copies (this form exists for callers that need sub-batches to
  // outlive the request; the router itself uses PartitionRefs directly).
  ShardedRefBatch refs = PartitionRefs(MakeCandidateRefs(candidates));
  ShardedBatch batch;
  batch.shard_candidates.resize(num_shards_);
  batch.shard_to_request = std::move(refs.shard_to_request);
  batch.total = refs.total;
  for (size_t s = 0; s < num_shards_; ++s) {
    batch.shard_candidates[s].reserve(refs.shard_rows[s].size());
    for (const CandidateRef& row : refs.shard_rows[s]) {
      batch.shard_candidates[s].push_back(*row.candidate);
    }
  }
  return batch;
}

}  // namespace snorkel
