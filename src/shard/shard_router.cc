#include "shard/shard_router.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <optional>
#include <thread>
#include <tuple>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bounded_queue.h"
#include "util/timer.h"

namespace snorkel {

namespace {

/// Completion latch shared by all of one request's shard jobs: each worker
/// writes its result slot and decrements; the caller sleeps until every
/// admitted job has reported. One latch per request instead of one
/// promise/future pair per shard job — a single caller wakeup and zero
/// shared-state heap allocations on the per-request hot path.
struct RequestLatch {
  std::mutex mu;
  std::condition_variable cv;
  /// Jobs armed but not yet completed. Armed BEFORE each push (a worker can
  /// complete a job before the push even returns) and un-armed if the push
  /// is rejected; workers decrement on completion, so the count stays
  /// consistent no matter how fan-out and completions interleave.
  size_t remaining = 0;

  void Arm() {
    std::lock_guard<std::mutex> lock(mu);
    ++remaining;
  }

  /// Reverts an Arm() whose push was not admitted.
  void Disarm() {
    std::lock_guard<std::mutex> lock(mu);
    --remaining;
  }

  void Complete() {
    std::lock_guard<std::mutex> lock(mu);
    if (--remaining == 0) cv.notify_one();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return remaining == 0; });
  }
};

/// One shard-bound unit of work: a borrowed, zero-copy ref sub-batch plus
/// the request flags it must be served under. EVERYTHING the job points at
/// (corpus, rows, slot, latch) is owned by the caller's Label() frame —
/// which is why the router always waits for every admitted job, even on a
/// rejected or failed request, before returning.
struct ShardJob {
  const Corpus* corpus = nullptr;
  const std::vector<CandidateRef>* rows = nullptr;
  bool include_votes = false;
  bool apply_class_balance = true;
  /// Where the worker writes this job's result (caller-owned, stable).
  std::optional<Result<LabelResponse>>* slot = nullptr;
  RequestLatch* latch = nullptr;
  /// Trace identity carried across the queue hop (zero when untraced) and
  /// the admission timestamp the worker turns into a queue-wait span.
  obs::TraceContext trace_ctx;
  uint64_t admit_ns = 0;

  void Finish(Result<LabelResponse> result) {
    slot->emplace(std::move(result));
    latch->Complete();
  }
};

bool Fusable(const ShardJob& a, const ShardJob& b) {
  return a.corpus == b.corpus && a.apply_class_balance == b.apply_class_balance;
}

}  // namespace

struct ShardRouter::Impl {
  struct Shard {
    std::unique_ptr<LabelService> replica;
    std::unique_ptr<BoundedQueue<ShardJob>> queue;
    std::vector<std::thread> workers;
  };

  Options options;
  CandidatePartitioner partitioner;
  size_t lf_count = 0;
  /// Task cardinality of the snapshot every replica serves (2 = binary);
  /// K-class responses carry flat m×K class_posteriors the merge scatters
  /// K doubles at a time.
  int cardinality = 2;
  std::vector<Shard> shards;
  std::atomic<bool> shutdown{false};
  std::once_flag shutdown_once;

  mutable std::mutex stats_mu;
  uint64_t num_requests = 0;
  uint64_t num_candidates = 0;
  uint64_t rejected_requests = 0;
  uint64_t failed_requests = 0;
  uint64_t degraded_requests = 0;
  uint64_t fused_jobs = 0;
  /// High-water gauge, atomic so the admission hot path never touches the
  /// shared stats lock.
  std::atomic<size_t> max_queue_depth{0};
  bool has_served = false;

  void RecordQueueDepth(size_t depth) {
    size_t seen = max_queue_depth.load(std::memory_order_relaxed);
    while (depth > seen && !max_queue_depth.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }
  std::chrono::steady_clock::time_point first_request_start{};
  std::chrono::steady_clock::time_point last_request_done{};

  /// Registry callback tokens for the router counters (callbacks lock
  /// stats_mu; unregistered in ~Impl, which bars further invocation).
  std::vector<uint64_t> metric_tokens;

  explicit Impl(Options opts)
      : options(opts), partitioner(opts.num_shards) {
    auto& registry = obs::MetricsRegistry::Default();
    auto expose = [&](const char* name, uint64_t Impl::* member) {
      metric_tokens.push_back(registry.RegisterCallback(
          name, obs::MetricType::kCounter, [this, member]() {
            std::lock_guard<std::mutex> lock(stats_mu);
            return static_cast<double>(this->*member);
          }));
    };
    expose("snorkel_router_requests_total", &Impl::num_requests);
    expose("snorkel_router_candidates_total", &Impl::num_candidates);
    expose("snorkel_router_rejected_total", &Impl::rejected_requests);
    expose("snorkel_router_failed_total", &Impl::failed_requests);
    expose("snorkel_router_degraded_total", &Impl::degraded_requests);
    expose("snorkel_router_fused_jobs_total", &Impl::fused_jobs);
    metric_tokens.push_back(registry.RegisterCallback(
        "snorkel_router_max_queue_depth", obs::MetricType::kGauge, [this]() {
          return static_cast<double>(
              max_queue_depth.load(std::memory_order_relaxed));
        }));
  }

  ~Impl() {
    auto& registry = obs::MetricsRegistry::Default();
    for (uint64_t token : metric_tokens) registry.UnregisterCallback(token);
  }

  /// Turns a job's admission timestamp into a queue-wait span and installs
  /// its trace identity on the worker thread for the replica call.
  static void EmitQueueWait(const ShardJob& job) {
    if (!job.trace_ctx.valid()) return;
    obs::EmitSpan(job.trace_ctx, "shard.queue_wait", job.admit_ns,
                  obs::NowNanos());
  }

  void ServeOne(Shard& shard, ShardJob& job) {
    EmitQueueWait(job);
    obs::ScopedTraceContext ctx(job.trace_ctx);
    LabelRequest request;
    request.corpus = job.corpus;
    request.candidate_refs = job.rows;
    request.include_votes = job.include_votes;
    request.apply_class_balance = job.apply_class_balance;
    // The span must close before Finish unblocks the caller and before the
    // flush, or a drain right after Label() returns misses shard.serve.
    Result<LabelResponse> response(Status::Internal("unset"));
    {
      obs::TraceSpan span("shard.serve");
      response = shard.replica->Label(request);
    }
    obs::FlushThreadSpans();
    job.Finish(std::move(response));
  }

  /// Serves a run of queued jobs, fusing consecutive compatible sub-batches
  /// into one model pass. Correctness relies on every per-row stage being
  /// content-pure (LF votes per candidate, WeightedRowSums per row,
  /// SigmoidBatch per element): concatenating sub-batches changes only how
  /// much work one pass does, never any row's bits.
  void ServeRun(Shard& shard, std::vector<ShardJob>& run) {
    size_t begin = 0;
    while (begin < run.size()) {
      size_t end = begin + 1;
      while (end < run.size() && Fusable(run[begin], run[end])) ++end;
      if (end - begin == 1) {
        ServeOne(shard, run[begin]);
      } else {
        ServeFused(shard, run, begin, end);
      }
      begin = end;
    }
  }

  void ServeFused(Shard& shard, std::vector<ShardJob>& run, size_t begin,
                  size_t end) {
    size_t total = 0;
    bool any_votes = false;
    for (size_t g = begin; g < end; ++g) {
      total += run[g].rows->size();
      any_votes = any_votes || run[g].include_votes;
    }
    // Concatenating refs is 16 bytes per row — the fused pass never copies
    // a candidate.
    std::vector<CandidateRef> fused;
    fused.reserve(total);
    for (size_t g = begin; g < end; ++g) {
      fused.insert(fused.end(), run[g].rows->begin(), run[g].rows->end());
    }
    LabelRequest request;
    request.corpus = run[begin].corpus;
    request.candidate_refs = &fused;
    request.include_votes = any_votes;
    request.apply_class_balance = run[begin].apply_class_balance;
    // Each fused job gets its own queue-wait span; the single model pass
    // is attributed to the first job's trace (annotated with the fuse
    // width so the others' traces aren't silently missing time).
    for (size_t g = begin; g < end; ++g) EmitQueueWait(run[g]);
    Result<LabelResponse> response(Status::Internal("unset"));
    {
      obs::ScopedTraceContext ctx(run[begin].trace_ctx);
      {
        obs::TraceSpan span("shard.serve");
        if (span.active()) {
          span.Annotate("fused=" + std::to_string(end - begin));
        }
        response = shard.replica->Label(request);
      }
      obs::FlushThreadSpans();
    }
    if (!response.ok()) {
      // Isolate the failure: one poisoned sub-batch must not fail the
      // unrelated requests that happened to be fused with it.
      for (size_t g = begin; g < end; ++g) ServeOne(shard, run[g]);
      return;
    }
    size_t offset = 0;
    const size_t k = static_cast<size_t>(response->cardinality);
    for (size_t g = begin; g < end; ++g) {
      ShardJob& job = run[g];
      size_t n = job.rows->size();
      LabelResponse out;
      out.cardinality = response->cardinality;
      if (!response->posteriors.empty()) {
        out.posteriors.assign(response->posteriors.begin() + offset,
                              response->posteriors.begin() + offset + n);
      }
      out.hard_labels.assign(response->hard_labels.begin() + offset,
                             response->hard_labels.begin() + offset + n);
      if (!response->class_posteriors.empty()) {
        // K-class rows are k doubles wide; slicing a fused pass cannot
        // change a row's bits (the E-step kernel is row-pure).
        out.class_posteriors.assign(
            response->class_posteriors.begin() + offset * k,
            response->class_posteriors.begin() + (offset + n) * k);
      }
      if (job.include_votes) {
        std::vector<size_t> rows(n);
        std::iota(rows.begin(), rows.end(), offset);
        out.votes = response->votes.SelectRows(rows);
      }
      out.latency_ms = response->latency_ms;
      job.Finish(std::move(out));
      offset += n;
    }
    std::lock_guard<std::mutex> lock(stats_mu);
    fused_jobs += (end - begin) - 1;
  }

  void WorkerLoop(size_t shard_index) {
    Shard& shard = shards[shard_index];
    while (auto first = shard.queue->Pop()) {
      std::vector<ShardJob> run;
      run.push_back(std::move(*first));
      // Coalesce whatever burst is already queued (bounded by max_fuse);
      // never wait for more traffic.
      while (run.size() < std::max<size_t>(1, options.max_fuse)) {
        auto next = shard.queue->TryPop();
        if (!next) break;
        run.push_back(std::move(*next));
      }
      ServeRun(shard, run);
    }
  }
};

ShardRouter::ShardRouter(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

ShardRouter& ShardRouter::operator=(ShardRouter&& other) {
  if (this != &other) {
    // A defaulted move would destroy a live Impl with joinable workers
    // (std::terminate) — drain and join this tier before adopting other's.
    Shutdown();
    impl_ = std::move(other.impl_);
  }
  return *this;
}

ShardRouter::~ShardRouter() { Shutdown(); }

size_t ShardRouter::num_shards() const { return impl_->shards.size(); }

Result<ShardRouter> ShardRouter::Create(const ModelSnapshot& snapshot,
                                        const LabelingFunctionSet& lfs,
                                        Options options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("ShardRouter needs at least one shard");
  }
  auto impl = std::make_unique<Impl>(options);
  impl->lf_count = lfs.size();
  impl->cardinality = snapshot.cardinality;
  impl->shards.resize(options.num_shards);
  for (size_t s = 0; s < options.num_shards; ++s) {
    auto replica = LabelService::Create(snapshot, lfs, options.service);
    if (!replica.ok()) return replica.status();
    impl->shards[s].replica =
        std::make_unique<LabelService>(std::move(*replica));
    impl->shards[s].queue =
        std::make_unique<BoundedQueue<ShardJob>>(options.queue_capacity);
  }
  // Workers start only after every shard is fully constructed (WorkerLoop
  // indexes impl->shards).
  size_t workers = std::max<size_t>(1, options.workers_per_shard);
  for (size_t s = 0; s < options.num_shards; ++s) {
    for (size_t w = 0; w < workers; ++w) {
      impl->shards[s].workers.emplace_back(
          [raw = impl.get(), s] { raw->WorkerLoop(s); });
    }
  }
  return ShardRouter(std::move(impl));
}

Result<ShardRouter> ShardRouter::FromFile(const std::string& path,
                                          const LabelingFunctionSet& lfs,
                                          Options options,
                                          SnapshotLoadInfo* load_info) {
  auto snapshot = LoadSnapshotMapped(path, load_info);
  if (!snapshot.ok()) return snapshot.status();
  return Create(*snapshot, lfs, options);
}

void ShardRouter::Shutdown() {
  if (impl_ == nullptr) return;  // Moved-from.
  std::call_once(impl_->shutdown_once, [this] {
    impl_->shutdown.store(true, std::memory_order_release);
    for (auto& shard : impl_->shards) shard.queue->Close();
    for (auto& shard : impl_->shards) {
      for (auto& worker : shard.workers) {
        if (worker.joinable()) worker.join();
      }
    }
  });
}

Result<LabelResponse> ShardRouter::Label(const LabelRequest& request) {
  Impl& impl = *impl_;
  if (request.corpus == nullptr) {
    return Status::InvalidArgument("request missing corpus");
  }
  const bool by_refs = request.candidate_refs != nullptr;
  if (by_refs == (request.candidates != nullptr)) {
    return Status::InvalidArgument(
        "request must set exactly one of candidates / candidate_refs");
  }
  if (impl.shutdown.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("router is shut down");
  }
  const auto request_start = std::chrono::steady_clock::now();
  WallTimer timer;

  // Zero-copy fan-out: sub-batches borrow the request's candidates (and
  // keep the caller-visible indices), so sharding neither copies a
  // candidate nor renumbers what index-dependent LFs observe.
  std::vector<CandidateRef> identity;
  if (!by_refs) identity = MakeCandidateRefs(*request.candidates);
  const std::vector<CandidateRef>& base =
      by_refs ? *request.candidate_refs : identity;
  ShardedRefBatch parts = impl.partitioner.PartitionRefs(base);

  // ---- Fan out: admit one job per non-empty shard. All jobs share one
  // completion latch; slots are preallocated so their addresses stay stable
  // while workers hold them. ----
  struct Pending {
    size_t shard = 0;
    std::vector<size_t> to_request;
    std::optional<Result<LabelResponse>>* slot = nullptr;
  };
  RequestLatch latch;
  std::vector<std::optional<Result<LabelResponse>>> slots(impl.shards.size());
  std::vector<Pending> pending;
  pending.reserve(impl.shards.size());
  size_t admitted = 0;
  Status admit = Status::OK();
  // Typed failures per sub-batch, recorded instead of failing the request
  // when allow_partial (admission rejections and shard errors both land
  // here; merged with the successful shards' kOk outcomes below).
  std::vector<ShardOutcome> failed_outcomes;
  // Reject policy: admission is per-shard, not transactional — a request
  // rejected at shard s has already committed its sub-batches to shards
  // < s, whose (discarded) results the caller still waits for. To keep
  // rejection cheap under overload, probe every needed queue first and
  // shed before committing anything; the probe is advisory (another caller
  // can fill a queue between probe and push), so the per-shard rejection
  // path below still backstops it. (allow_partial requests skip the probe:
  // a full queue degrades that shard's rows, it does not shed the request.)
  if (!impl.options.block_on_full && !request.allow_partial) {
    for (size_t s = 0; s < impl.shards.size(); ++s) {
      auto& queue = *impl.shards[s].queue;
      if (!parts.shard_rows[s].empty() &&
          queue.size() >= queue.capacity()) {
        std::lock_guard<std::mutex> lock(impl.stats_mu);
        ++impl.rejected_requests;
        return Status::ResourceExhausted(
            "shard " + std::to_string(s) + "/" +
            std::to_string(impl.shards.size()) + " queue full (capacity " +
            std::to_string(queue.capacity()) + "); request rejected");
      }
    }
  }
  for (size_t s = 0; s < impl.shards.size() && admit.ok(); ++s) {
    if (parts.shard_rows[s].empty()) continue;
    ShardJob job;
    job.corpus = request.corpus;
    job.rows = &parts.shard_rows[s];
    job.include_votes = request.include_votes;
    job.apply_class_balance = request.apply_class_balance;
    job.slot = &slots[s];
    job.latch = &latch;
    job.trace_ctx = obs::CurrentTraceContext();
    job.admit_ns = job.trace_ctx.valid() ? obs::NowNanos() : 0;
    latch.Arm();  // A worker may Complete() before the push even returns.
    auto& queue = *impl.shards[s].queue;
    using PushResult = BoundedQueue<ShardJob>::PushResult;
    PushResult pushed = impl.options.block_on_full
                            ? queue.Push(std::move(job))
                            : queue.TryPush(std::move(job));
    switch (pushed) {
      case PushResult::kOk:
        ++admitted;
        pending.push_back(
            Pending{s, std::move(parts.shard_to_request[s]), &slots[s]});
        impl.RecordQueueDepth(queue.size());
        break;
      case PushResult::kQueueFull:
        latch.Disarm();  // Not consumed.
        if (request.allow_partial) {
          // Degrade just this shard's rows; keep admitting the rest.
          failed_outcomes.push_back(ShardOutcome{
              s, parts.shard_rows[s].size(), StatusCode::kResourceExhausted,
              "queue full (capacity " + std::to_string(queue.capacity()) +
                  ")",
              {}});
        } else {
          admit = Status::ResourceExhausted(
              "shard " + std::to_string(s) + "/" +
              std::to_string(impl.shards.size()) + " queue full (capacity " +
              std::to_string(queue.capacity()) + "); request rejected");
        }
        break;
      case PushResult::kClosed:
        latch.Disarm();
        admit = Status::FailedPrecondition("router is shut down");
        break;
    }
  }

  // ---- Collect. Always wait for EVERY admitted job before returning:
  // enqueued sub-batches reference the caller's corpus, latch, and slots,
  // so even a rejected or failed request must not race its own workers. ----
  if (admitted > 0) latch.Wait();

  if (!admit.ok()) {
    if (admit.code() == StatusCode::kResourceExhausted) {
      std::lock_guard<std::mutex> lock(impl.stats_mu);
      ++impl.rejected_requests;
    }
    return admit;
  }
  // Which admitted sub-batches actually served. Default policy: any failure
  // fails the whole request, typed, with shard context — never a
  // partially-filled response. allow_partial: failures become uncovered
  // rows; only a request with NO surviving sub-batch fails outright.
  std::vector<const Pending*> served;
  served.reserve(pending.size());
  for (const Pending& p : pending) {
    const Result<LabelResponse>& result = **p.slot;
    if (result.ok()) {
      served.push_back(&p);
      continue;
    }
    const Status& cause = result.status();
    if (!request.allow_partial) {
      std::lock_guard<std::mutex> lock(impl.stats_mu);
      ++impl.failed_requests;
      return Status(cause.code(), "shard " + std::to_string(p.shard) + "/" +
                                      std::to_string(impl.shards.size()) +
                                      " failed: " + cause.message());
    }
    failed_outcomes.push_back(ShardOutcome{
        p.shard, p.to_request.size(), cause.code(), cause.message(), {}});
  }
  if (request.allow_partial && served.empty() && !failed_outcomes.empty()) {
    // Nothing survived — a zero-coverage "partial" response would be a
    // failure wearing a success type. Fail typed like the default policy.
    const ShardOutcome& first = failed_outcomes.front();
    std::lock_guard<std::mutex> lock(impl.stats_mu);
    if (first.code == StatusCode::kResourceExhausted) {
      ++impl.rejected_requests;
    } else {
      ++impl.failed_requests;
    }
    return Status(first.code, "shard " + std::to_string(first.shard) + "/" +
                                  std::to_string(impl.shards.size()) +
                                  " failed (no shard survived): " +
                                  first.message);
  }

  // ---- Merge back into request order. Binary responses scatter one
  // scalar per row; K-class responses scatter one K-vector per row. Either
  // way every per-row value is copied verbatim from its shard's response,
  // so the merged batch is bitwise-identical to one unsharded pass. ----
  const size_t k = static_cast<size_t>(impl.cardinality);
  LabelResponse response;
  response.cardinality = impl.cardinality;
  if (impl.cardinality == 2) {
    response.posteriors.resize(parts.total);
  } else {
    response.class_posteriors.resize(parts.total * k);
  }
  response.hard_labels.resize(parts.total);
  // Degradation bookkeeping: covered-index bitmap + per-sub-batch status
  // (kOk rows merged below; failed ones stay uncovered).
  const bool degraded = !failed_outcomes.empty();
  if (degraded) {
    response.is_partial = true;
    response.covered.assign((parts.total + 63) / 64, 0);
    response.shard_outcomes = std::move(failed_outcomes);
  }
  // `Label` names this method here, so qualify the vote type.
  std::vector<std::tuple<size_t, size_t, snorkel::Label>> vote_triplets;
  for (const Pending* served_p : served) {
    const Result<LabelResponse>& slot_result = **served_p->slot;
    const LabelResponse& shard_response = *slot_result;
    const std::vector<size_t>& to_request = served_p->to_request;
    if (degraded) {
      response.shard_outcomes.push_back(ShardOutcome{
          served_p->shard, to_request.size(), StatusCode::kOk, "", {}});
      for (size_t t = 0; t < to_request.size(); ++t) {
        response.covered[to_request[t] / 64] |= uint64_t{1}
                                                << (to_request[t] % 64);
      }
    }
    for (size_t t = 0; t < to_request.size(); ++t) {
      response.hard_labels[to_request[t]] = shard_response.hard_labels[t];
      if (impl.cardinality == 2) {
        response.posteriors[to_request[t]] = shard_response.posteriors[t];
      } else {
        std::copy(shard_response.class_posteriors.begin() + t * k,
                  shard_response.class_posteriors.begin() + (t + 1) * k,
                  response.class_posteriors.begin() + to_request[t] * k);
      }
    }
    if (request.include_votes) {
      for (size_t t = 0; t < to_request.size(); ++t) {
        for (const auto& entry : shard_response.votes.row(t)) {
          vote_triplets.emplace_back(to_request[t], entry.lf, entry.label);
        }
      }
    }
  }
  if (request.include_votes) {
    auto votes = LabelMatrix::FromTriplets(parts.total, impl.lf_count,
                                           vote_triplets, impl.cardinality);
    if (!votes.ok()) {
      // Unreachable from well-formed shard matrices; surface, don't hide.
      return Status::Internal("vote reassembly failed: " +
                              votes.status().message());
    }
    response.votes = std::move(*votes);
  }
  if (degraded) {
    // Deterministic report order regardless of completion interleaving.
    std::sort(response.shard_outcomes.begin(), response.shard_outcomes.end(),
              [](const ShardOutcome& a, const ShardOutcome& b) {
                return a.shard < b.shard;
              });
  }
  response.latency_ms = timer.ElapsedMillis();

  {
    std::lock_guard<std::mutex> lock(impl.stats_mu);
    if (degraded) ++impl.degraded_requests;
    ++impl.num_requests;
    impl.num_candidates += parts.total;
    if (!impl.has_served || request_start < impl.first_request_start) {
      impl.first_request_start = request_start;
      impl.has_served = true;
    }
    const auto done = std::chrono::steady_clock::now();
    if (done > impl.last_request_done) impl.last_request_done = done;
  }
  return response;
}

void ShardRouter::InvalidateCache() {
  for (auto& shard : impl_->shards) shard.replica->InvalidateCache();
}

RouterStats ShardRouter::stats() const {
  const Impl& impl = *impl_;
  RouterStats out;
  {
    std::lock_guard<std::mutex> lock(impl.stats_mu);
    out.num_requests = impl.num_requests;
    out.num_candidates = impl.num_candidates;
    out.rejected_requests = impl.rejected_requests;
    out.failed_requests = impl.failed_requests;
    out.degraded_requests = impl.degraded_requests;
    out.fused_jobs = impl.fused_jobs;
    out.max_queue_depth = impl.max_queue_depth.load(std::memory_order_relaxed);
    if (impl.has_served) {
      out.busy_span_s = std::chrono::duration<double>(impl.last_request_done -
                                                      impl.first_request_start)
                            .count();
      out.throughput_cps =
          out.busy_span_s > 0.0
              ? static_cast<double>(impl.num_candidates) / out.busy_span_s
              : 0.0;
    }
  }
  if (!impl.shards.empty()) {
    // Replicas were built from one snapshot; any replica's identity is the
    // tier's.
    out.snapshot_version = impl.shards[0].replica->snapshot_version();
    out.snapshot_checksum = impl.shards[0].replica->snapshot_checksum();
  }
  for (const auto& shard : impl.shards) {
    out.queue_depth += shard.queue->size();
    out.per_shard.push_back(shard.replica->stats());
    const ServiceStats& replica = out.per_shard.back();
    out.lf_columns_reused += replica.lf_columns_reused;
    out.lf_columns_computed += replica.lf_columns_computed;
    out.cache_set_hits += replica.cache_set_hits;
    out.cache_set_misses += replica.cache_set_misses;
    out.cache_bytes += replica.cache_bytes;
    out.cache_appended_rows += replica.cache_appended_rows;
    // Shards share bucket bounds (obs::LatencyBucketsMs), so summing the
    // per-replica histograms gives an exact fleet-level bucket population —
    // the tier's quantiles come from the merged snapshot, not from
    // averaging per-shard quantiles (which would be meaningless).
    out.latency.Merge(replica.latency);
  }
  return out;
}

}  // namespace snorkel
