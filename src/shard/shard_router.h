#ifndef SNORKEL_SHARD_SHARD_ROUTER_H_
#define SNORKEL_SHARD_SHARD_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lf/labeling_function.h"
#include "serve/label_service.h"
#include "serve/snapshot.h"
#include "shard/partitioner.h"
#include "util/status.h"

namespace snorkel {

/// Router-level serving counters, aggregated over every shard replica.
struct RouterStats {
  /// Client requests answered successfully (merged responses).
  uint64_t num_requests = 0;
  /// Candidates labeled across successful requests.
  uint64_t num_candidates = 0;
  /// Requests refused with kResourceExhausted because a shard queue was at
  /// capacity (reject backpressure policy only).
  uint64_t rejected_requests = 0;
  /// Requests failed by a shard error (typed status propagated to caller).
  uint64_t failed_requests = 0;
  /// allow_partial requests answered with is_partial == true: at least one
  /// sub-batch failed and its rows were returned uncovered instead of
  /// failing the whole request.
  uint64_t degraded_requests = 0;
  /// Sub-batches that were coalesced into an immediately preceding model
  /// pass by a shard worker (queue pipelining at work).
  uint64_t fused_jobs = 0;
  /// Sub-batches currently sitting in shard queues (instantaneous gauge).
  size_t queue_depth = 0;
  /// High-water mark of any single shard queue's depth.
  size_t max_queue_depth = 0;
  /// Wall-clock candidates/sec across the whole tier (same definition as
  /// ServiceStats::throughput_cps).
  double throughput_cps = 0.0;
  double busy_span_s = 0.0;
  /// Fleet-level model-pass latency: the per-replica histograms summed
  /// bucket-by-bucket (all replicas share obs::LatencyBucketsMs bounds).
  /// Quantiles over this merged snapshot are the tier's true quantiles.
  obs::HistogramSnapshot latency;
  /// Column-cache effectiveness summed over every replica (each replica's
  /// ServiceStats cache fields; see IncrementalApplier::Stats).
  uint64_t lf_columns_reused = 0;
  uint64_t lf_columns_computed = 0;
  uint64_t cache_set_hits = 0;
  uint64_t cache_set_misses = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_appended_rows = 0;
  /// Artifact identity every replica serves (replicas of one router always
  /// agree — they were built from the same snapshot): the store version and
  /// canonical content checksum, for rollout observability.
  uint64_t snapshot_version = 0;
  uint64_t snapshot_checksum = 0;
  /// Per-replica serving stats, indexed by shard. A shard's num_requests
  /// counts model passes (fused sub-batches count once), not client
  /// requests.
  std::vector<ServiceStats> per_shard;
};

/// The scale-out tier over N LabelService replicas — the DryBell-shaped
/// layer that turns one-process serving into a horizontally partitioned
/// fleet (ROADMAP "multi-node sharding" + "async request queue"):
///
///   Label(request)
///     └─ CandidatePartitioner: hash-split candidates into per-shard
///        sub-batches by stable content key
///     └─ BoundedQueue per shard: admission with explicit backpressure —
///        block until space, or typed kResourceExhausted rejection
///     └─ dedicated worker threads per shard: pop sub-batches, coalesce
///        bursts into fused model passes, run the shard's replica
///     └─ merge: responses reassembled into request order
///
/// Guarantees:
///  - Posteriors (the binary scalar AND the K-class per-row class
///    distribution), hard labels, and (with include_votes) the reassembled
///    vote matrix are BITWISE-IDENTICAL to one unsharded LabelService
///    answering the same request: every per-row kernel is content-pure, so
///    neither the partition, the sub-batch sizes, nor worker-side fusion
///    can perturb a single bit.
///  - By default a failed shard fails the whole request with a typed status
///    naming the shard ("shard 2/4: ..."); the router never returns
///    partially-filled data silently. A request may instead opt into typed
///    DEGRADED service with LabelRequest::allow_partial: covered rows are
///    still bitwise-identical to the unsharded answer, failed sub-batches
///    surface as uncovered rows (LabelResponse::covered bitmap +
///    per-sub-batch ShardOutcome), and only a request with NO surviving
///    sub-batch fails outright.
///  - Requests admitted before Shutdown() drain to completion; Label()
///    after shutdown is a typed FailedPrecondition.
///
/// Thread-safe: any number of concurrent callers; bursty callers pipeline
/// through the queues instead of contending inside Label().
class ShardRouter {
 public:
  struct Options {
    /// Number of LabelService replicas (>= 1).
    size_t num_shards = 2;
    /// Per-shard queue bound (sub-batches); clamped to >= 1.
    size_t queue_capacity = 128;
    /// Dedicated worker threads per shard; clamped to >= 1.
    size_t workers_per_shard = 1;
    /// Backpressure policy when a shard queue is full: true = the caller
    /// blocks in Label() until space frees up; false = the request is
    /// rejected with kResourceExhausted (and counted in rejected_requests).
    /// Rejection is all-or-nothing for the RESPONSE (never partial
    /// results), but admission is per-shard, not transactional: a full
    /// queue is probed for up-front (cheap shed with no wasted work), yet
    /// under a probe/push race a request can commit sub-batches to some
    /// shards before being rejected at another — those execute and are
    /// discarded, and the caller waits for them before the rejection
    /// returns.
    bool block_on_full = true;
    /// Max sub-batches a worker coalesces into one fused model pass. Fusing
    /// amortizes per-pass fixed costs under bursty load and cannot change
    /// results (see the bitwise guarantee above). 1 disables fusion.
    size_t max_fuse = 8;
    /// Options for each shard's LabelService replica. The column cache
    /// defaults ON (matching LabelService): it is concurrent and
    /// multi-set, and sub-batches fingerprint by content + preserved index,
    /// so repeat/alternating traffic hits per shard instead of serializing
    /// behind an apply mutex (the pre-PR-5 reason it defaulted off here).
    LabelService::Options service;
  };

  /// Builds `num_shards` replicas from one snapshot; every replica
  /// validates the live LF set exactly as LabelService::Create does.
  static Result<ShardRouter> Create(const ModelSnapshot& snapshot,
                                    const LabelingFunctionSet& lfs,
                                    Options options);

  /// LoadSnapshotMapped + Create: the artifact is decoded from an mmap'd
  /// view, so a process tree of routers shares one page-cache copy of the
  /// snapshot bytes. `load_info` (optional) reports whether mmap was used.
  static Result<ShardRouter> FromFile(const std::string& path,
                                      const LabelingFunctionSet& lfs,
                                      Options options,
                                      SnapshotLoadInfo* load_info = nullptr);

  ShardRouter(ShardRouter&&) = default;
  /// Shuts down the current tier (drain + join) before adopting the other's.
  ShardRouter& operator=(ShardRouter&& other);

  /// Shutdown() + join.
  ~ShardRouter();

  /// Labels one batch through the sharded tier. Blocks until every
  /// sub-batch has been served (or rejected/failed as a whole).
  Result<LabelResponse> Label(const LabelRequest& request);

  /// Aggregated router + per-shard counters.
  RouterStats stats() const;

  /// Drops every replica's cached LF columns (see
  /// LabelService::InvalidateCache for when this is required).
  void InvalidateCache();

  /// Closes every shard queue (subsequent Label() calls fail typed), lets
  /// the workers drain everything already admitted, and joins them.
  /// Idempotent; called by the destructor.
  void Shutdown();

  size_t num_shards() const;

 private:
  struct Impl;
  explicit ShardRouter(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
};

}  // namespace snorkel

#endif  // SNORKEL_SHARD_SHARD_ROUTER_H_
