#ifndef SNORKEL_SYNTH_SYNTHETIC_MATRIX_H_
#define SNORKEL_SYNTH_SYNTHETIC_MATRIX_H_

#include <cstdint>
#include <vector>

#include "core/label_matrix.h"
#include "core/types.h"
#include "util/status.h"

namespace snorkel {

/// Specification of one synthetic labeling function.
struct SyntheticLfSpec {
  /// P(vote agrees with the true label | LF votes). Values below 0.5 model
  /// adversarial LFs.
  double accuracy = 0.75;
  /// P(LF votes) — the labeling propensity p_l of §3.1.1.
  double propensity = 0.1;
  /// When >= 0, this LF copies the output (including abstentions) of the LF
  /// at this index with probability `copy_prob`, and otherwise votes
  /// independently; copy_of = j with copy_prob = 1 gives the perfectly
  /// correlated LFs of Example 3.1.
  int copy_of = -1;
  double copy_prob = 1.0;
};

/// A synthetic weak-supervision task: the label matrix, its ground truth,
/// and the planted generating parameters (for oracle comparisons).
struct SyntheticDataset {
  LabelMatrix matrix;
  std::vector<Label> gold;             // True labels in {+1, -1}.
  std::vector<double> true_weights;    // w*_j = logit(accuracy_j).
  std::vector<CorrelationPair> true_correlations;  // Planted copy pairs.
};

/// Global parameters of a synthetic matrix.
struct SyntheticMatrixOptions {
  size_t num_points = 1000;
  double class_balance = 0.5;  // P(y = +1).
  uint64_t seed = 42;
};

/// Generates label matrices with controlled accuracy, coverage, and
/// correlation structure — the workload behind Figures 4-6 and the
/// generative-model unit tests.
class SyntheticMatrixGenerator {
 public:
  /// Generates a matrix with one column per spec. LFs are sampled in index
  /// order, so `copy_of` must point at a lower index.
  static Result<SyntheticDataset> Generate(
      const SyntheticMatrixOptions& options,
      const std::vector<SyntheticLfSpec>& lfs);

  /// The Figure 4 setup: class-balanced data with n conditionally
  /// independent LFs of equal accuracy and propensity.
  static Result<SyntheticDataset> GenerateIid(size_t num_points, size_t num_lfs,
                                              double accuracy,
                                              double propensity,
                                              uint64_t seed);

  /// The Example 3.1 pathology: `num_correlated` perfectly correlated LFs of
  /// accuracy `corr_accuracy` plus `num_independent` conditionally
  /// independent LFs of accuracy `indep_accuracy`, all with full coverage.
  static Result<SyntheticDataset> GenerateExample31(
      size_t num_points, size_t num_correlated, size_t num_independent,
      double corr_accuracy, double indep_accuracy, uint64_t seed);

  /// The Figure 5 (left) simulation: `num_clusters` clusters of
  /// `cluster_size` LFs whose members copy the cluster head with probability
  /// `copy_prob`, plus `num_independent` independent LFs.
  static Result<SyntheticDataset> GenerateClustered(
      size_t num_points, size_t num_clusters, size_t cluster_size,
      size_t num_independent, double accuracy, double propensity,
      double copy_prob, uint64_t seed);
};

}  // namespace snorkel

#endif  // SNORKEL_SYNTH_SYNTHETIC_MATRIX_H_
