#ifndef SNORKEL_SYNTH_USER_STUDY_H_
#define SNORKEL_SYNTH_USER_STUDY_H_

#include <utility>
#include <vector>

#include "lf/labeling_function.h"
#include "synth/relation_task.h"
#include "util/status.h"

namespace snorkel {

/// Simulation of the §4.2 user study: each synthetic "user" writes a small
/// set of labeling functions of varying quality for the Spouses task. The
/// combined pool (the paper merges all 125 participant LFs for the Figure 5
/// right panel) contains near-duplicates and spurious functions, exactly the
/// redundancy structure learning is meant to absorb.
struct UserStudyPool {
  /// The underlying Spouses-analog task.
  RelationTask task;
  /// All users' LFs concatenated; column ranges below index into it.
  LabelingFunctionSet pool;
  /// Per-user [begin, end) ranges of pool columns.
  std::vector<std::pair<size_t, size_t>> user_lf_ranges;
};

struct UserStudyOptions {
  size_t num_users = 14;  // Analysis population of the paper's study.
  size_t min_lfs_per_user = 4;
  size_t max_lfs_per_user = 10;
  /// Probability mix of LF quality per authored function.
  double good_idea_rate = 0.50;
  double ambiguous_idea_rate = 0.25;  // Remainder is spurious (~chance).
  /// Scale of the underlying Spouses corpus.
  double corpus_scale = 0.5;
  uint64_t seed = 42;
};

Result<UserStudyPool> MakeUserStudyPool(const UserStudyOptions& options = {});

}  // namespace snorkel

#endif  // SNORKEL_SYNTH_USER_STUDY_H_
