#include "synth/relation_task.h"

#include <algorithm>
#include <cctype>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "lf/declarative.h"
#include "text/stemmer.h"
#include "util/math_util.h"
#include "util/random.h"
#include "util/string_util.h"

namespace snorkel {

namespace {

/// A directed entity pair (indices into the entity name pools).
struct Pair {
  size_t e1 = 0;
  size_t e2 = 0;
};

uint64_t PairKey(size_t e1, size_t e2) {
  return (static_cast<uint64_t>(e1) << 32) | static_cast<uint64_t>(e2);
}

std::vector<std::string> MakeEntityNames(const std::string& prefix, size_t n) {
  std::vector<std::string> names(n);
  for (size_t i = 0; i < n; ++i) names[i] = prefix + std::to_string(i);
  return names;
}

/// Internal generation state threaded through the helpers.
struct GenState {
  const RelationTaskSpec* spec = nullptr;
  Rng rng{42};
  std::vector<std::string> entities1;
  std::vector<std::string> entities2;
  bool same_type = false;
  std::vector<Pair> relations;                 // The true relation set R.
  std::unordered_set<uint64_t> relation_keys;  // For membership tests.
  std::vector<std::string> fillers;

  Pair RandomRelatedPair() {
    return relations[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(relations.size()) - 1))];
  }

  Pair RandomUnrelatedPair() {
    size_t pool2 = same_type ? entities1.size() : entities2.size();
    for (int attempt = 0; attempt < 64; ++attempt) {
      size_t e1 = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(entities1.size()) - 1));
      size_t e2 = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pool2) - 1));
      if (same_type && e1 == e2) continue;
      if (relation_keys.count(PairKey(e1, e2)) == 0) return Pair{e1, e2};
    }
    return Pair{0, pool2 - 1};  // Degenerate fallback.
  }

  const std::string& Filler() {
    return fillers[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(fillers.size()) - 1))];
  }

  const Cue& PickCue(const std::vector<Cue>& bank) {
    return bank[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(bank.size()) - 1))];
  }
};

/// Generates one pair sentence; returns the candidate-level gold label.
Label GeneratePairSentence(GenState* state, Sentence* sentence) {
  const RelationTaskSpec& spec = *state->spec;
  Rng& rng = state->rng;
  bool positive = rng.Bernoulli(spec.positive_rate);

  // Entity pair selection: positives come from R; negatives reuse related
  // pairs often enough to make raw distant supervision imprecise.
  Pair pair = positive ? state->RandomRelatedPair()
              : rng.Bernoulli(spec.negative_reuses_related_pair)
                  ? state->RandomRelatedPair()
                  : state->RandomUnrelatedPair();
  // A "negative" sentence about a related pair simply fails to assert the
  // relation; the candidate's gold label reflects the sentence, not the KB.

  // Cue-slot mixtures are tuned so ambiguous cues end up roughly
  // class-balanced (they take a bigger slice of the smaller positive class).
  const CueBank& cues = spec.cues;
  const Cue* cue = nullptr;
  bool ambiguous_cue = false;
  if (positive) {
    double r = rng.Uniform();
    if (r < spec.rare_pos_rate && !cues.rare_pos.empty()) {
      cue = &state->PickCue(cues.rare_pos);
    } else if (r < spec.rare_pos_rate + 0.20 && !cues.ambiguous.empty()) {
      cue = &state->PickCue(cues.ambiguous);
      ambiguous_cue = true;
    } else {
      cue = &state->PickCue(cues.strong_pos);
    }
  } else {
    double r = rng.Uniform();
    if (r < 0.5 && !cues.neg.empty()) {
      cue = &state->PickCue(cues.neg);
    } else if (r < 0.93 && !cues.neutral.empty()) {
      cue = &state->PickCue(cues.neutral);
    } else if (!cues.ambiguous.empty()) {
      cue = &state->PickCue(cues.ambiguous);
      ambiguous_cue = true;
    } else {
      cue = &state->PickCue(cues.neutral);
    }
  }

  bool reversed = positive && rng.Bernoulli(spec.reversed_order_rate);
  const std::string& name1 = state->entities1[pair.e1];
  const std::string& name2 =
      state->same_type ? state->entities1[pair.e2] : state->entities2[pair.e2];

  auto& words = sentence->words;
  // Leading fillers.
  size_t lead = static_cast<size_t>(rng.UniformInt(1, 4));
  for (size_t i = 0; i < lead; ++i) words.push_back(state->Filler());

  auto emit_entity = [&](const std::string& name, const std::string& type) {
    Mention m;
    m.word_start = static_cast<uint32_t>(words.size());
    words.push_back(name);
    m.word_end = static_cast<uint32_t>(words.size());
    m.entity_type = type;
    m.canonical_id = name;
    sentence->mentions.push_back(std::move(m));
  };

  if (!reversed) {
    emit_entity(name1, spec.entity_type1);
  } else {
    emit_entity(name2, spec.entity_type2);
  }
  for (const auto& token : *cue) words.push_back(token);
  // Occasionally an off-label cue token lands in the between region
  // ("X and causes-related discussion Y"): pattern LFs stay precise but
  // imperfect, as in real corpora. Noise planted in the (large) negative
  // class scales with the class odds so that positive-cue precision stays
  // comparable across tasks with very different positive rates.
  double pos_odds = spec.positive_rate / (1.0 - spec.positive_rate);
  double between_noise = positive ? 0.05 : Clip(0.15 * pos_odds, 0.0, 0.3);
  if (rng.Bernoulli(between_noise)) {
    const auto& opposite = positive ? cues.neg : cues.strong_pos;
    if (!opposite.empty()) {
      words.push_back(state->PickCue(opposite)[0]);
    }
  }
  if (!reversed) {
    emit_entity(name2, spec.entity_type2);
  } else {
    emit_entity(name1, spec.entity_type1);
  }

  // Structure-LF context word right after the second span. The word agrees
  // with the label most of the time but flips side occasionally, so
  // structure-based LFs are informative yet imperfect.
  bool struct_side_positive = rng.Bernoulli(0.12) ? !positive : positive;
  if (struct_side_positive && !cues.struct_pos_context.empty() &&
      rng.Bernoulli(0.5)) {
    words.push_back(cues.struct_pos_context[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(cues.struct_pos_context.size()) - 1))]);
  } else if (!struct_side_positive && !cues.struct_neg_context.empty() &&
             rng.Bernoulli(0.5)) {
    words.push_back(cues.struct_neg_context[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(cues.struct_neg_context.size()) - 1))]);
  }

  // Trailing fillers and the discriminative-only context distractors.
  size_t tail = static_cast<size_t>(rng.UniformInt(2, 6));
  for (size_t i = 0; i < tail; ++i) words.push_back(state->Filler());
  // Occasional off-label cue word in the trailing context ("... did not
  // cause ..." style mentions): keeps sentence-scope heuristics precise but
  // not perfect. Same class-odds scaling as the between-region noise.
  double trailing_noise = positive ? 0.04 : Clip(0.12 * pos_odds, 0.0, 0.3);
  if (rng.Bernoulli(trailing_noise)) {
    const auto& opposite_bank = positive ? cues.neg : cues.strong_pos;
    if (!opposite_bank.empty()) {
      const Cue& noise_cue = state->PickCue(opposite_bank);
      for (const std::string& token : noise_cue) words.push_back(token);
    }
  }
  // The distractor words are a *weak* label-correlated signal: strong
  // enough for a model with good training labels to exploit, too weak to
  // let a model trained on very noisy labels recover the concept.
  // Ambiguous-cue sentences carry no label-correlated context either: their
  // class is genuinely unresolvable from the text (irreducible error for
  // every model, hand supervision included).
  const auto& own_ctx = positive ? cues.pos_context : cues.neg_context;
  const auto& other_ctx = positive ? cues.neg_context : cues.pos_context;
  if (!own_ctx.empty() && !ambiguous_cue && rng.Bernoulli(0.35)) {
    words.push_back(own_ctx[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(own_ctx.size()) - 1))]);
  }
  if (!other_ctx.empty() && rng.Bernoulli(0.12)) {  // Imperfect correlation.
    words.push_back(other_ctx[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(other_ctx.size()) - 1))]);
  }
  return positive ? 1 : -1;
}

void BuildKnowledgeBase(GenState* state, KnowledgeBase* kb) {
  const RelationTaskSpec& spec = *state->spec;
  Rng& rng = state->rng;
  auto id1 = [&](const Pair& p) { return state->entities1[p.e1]; };
  auto id2 = [&](const Pair& p) {
    return state->same_type ? state->entities1[p.e2]
                            : state->entities2[p.e2];
  };

  auto fill_primary = [&](const std::string& subset, double coverage,
                          double noise) {
    size_t included = 0;
    for (const Pair& p : state->relations) {
      if (rng.Bernoulli(coverage)) {
        kb->Add(subset, id1(p), id2(p));
        ++included;
      }
    }
    size_t noise_entries = static_cast<size_t>(
        noise * static_cast<double>(included == 0 ? 1 : included));
    for (size_t i = 0; i < noise_entries; ++i) {
      Pair p = state->RandomUnrelatedPair();
      kb->Add(subset, id1(p), id2(p));
    }
  };
  fill_primary("PrimaryA", spec.kb_coverage_a, spec.kb_noise_a);
  fill_primary("PrimaryB", spec.kb_coverage_b, spec.kb_noise_b);
  // A third, smaller curated source so tasks can wire several distant-
  // supervision LFs without making them near-copies of each other.
  if (spec.kb_coverage_a > 0.0) fill_primary("PrimaryC", 0.08, 0.2);

  // The anti-relation subset (e.g. CTD "Treats"): mostly unrelated pairs,
  // with a sliver of wrong (actually related) entries.
  size_t anti = state->relations.size() / 2;
  for (size_t i = 0; i < anti; ++i) {
    Pair p = state->RandomUnrelatedPair();
    kb->Add("Anti", id1(p), id2(p));
  }
  for (const Pair& p : state->relations) {
    if (rng.Bernoulli(0.05)) kb->Add("Anti", id1(p), id2(p));
  }
}

}  // namespace

double RelationTask::PositiveFraction() const {
  if (gold.empty()) return 0.0;
  double pos = 0.0;
  for (Label y : gold) pos += y > 0 ? 1.0 : 0.0;
  return pos / static_cast<double>(gold.size());
}

Result<RelationTask> GenerateRelationTask(const RelationTaskSpec& spec) {
  if (spec.num_documents == 0 || spec.num_entities1 < 2 ||
      spec.num_entities2 < 2 || spec.num_true_relations == 0) {
    return Status::InvalidArgument("degenerate task sizes");
  }
  if (spec.positive_rate <= 0.0 || spec.positive_rate >= 1.0) {
    return Status::InvalidArgument("positive_rate must be in (0, 1)");
  }
  if (spec.cues.strong_pos.empty() || spec.cues.neutral.empty()) {
    return Status::InvalidArgument("cue bank needs strong_pos and neutral cues");
  }
  if (spec.train_fraction + spec.dev_fraction >= 1.0) {
    return Status::InvalidArgument("train + dev fractions must leave a test split");
  }

  GenState state;
  state.spec = &spec;
  state.rng = Rng(spec.seed);
  state.same_type = spec.entity_type1 == spec.entity_type2;
  state.entities1 = MakeEntityNames(spec.entity_type1, spec.num_entities1);
  state.entities2 = state.same_type
                        ? std::vector<std::string>{}
                        : MakeEntityNames(spec.entity_type2, spec.num_entities2);
  state.fillers = MakeEntityNames("w", spec.filler_vocab_size);

  // Plant the true relation set R.
  size_t pool2 = state.same_type ? spec.num_entities1 : spec.num_entities2;
  for (size_t i = 0; i < spec.num_true_relations; ++i) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      size_t e1 = static_cast<size_t>(state.rng.UniformInt(
          0, static_cast<int64_t>(spec.num_entities1) - 1));
      size_t e2 = static_cast<size_t>(
          state.rng.UniformInt(0, static_cast<int64_t>(pool2) - 1));
      if (state.same_type && e1 == e2) continue;
      if (state.relation_keys.insert(PairKey(e1, e2)).second) {
        state.relations.push_back(Pair{e1, e2});
        break;
      }
    }
  }

  RelationTask task;
  task.name = spec.name;
  task.kb = std::make_unique<KnowledgeBase>();
  BuildKnowledgeBase(&state, task.kb.get());

  // Generate documents; remember each pair sentence's gold label.
  std::unordered_map<uint64_t, Label> sentence_gold;  // (doc<<20)|sentence.
  for (size_t d = 0; d < spec.num_documents; ++d) {
    Document doc;
    doc.name = spec.name + "_doc" + std::to_string(d);
    size_t pair_sentences = static_cast<size_t>(state.rng.UniformInt(
        static_cast<int64_t>(spec.min_pair_sentences_per_doc),
        static_cast<int64_t>(spec.max_pair_sentences_per_doc)));
    for (size_t s = 0; s < pair_sentences; ++s) {
      // Occasional mention-free filler sentence.
      if (state.rng.Bernoulli(0.15)) {
        Sentence filler;
        size_t len = static_cast<size_t>(state.rng.UniformInt(4, 9));
        for (size_t i = 0; i < len; ++i) {
          filler.words.push_back(state.Filler());
        }
        doc.sentences.push_back(std::move(filler));
      }
      Sentence sentence;
      Label gold = GeneratePairSentence(&state, &sentence);
      sentence_gold[(static_cast<uint64_t>(d) << 20) |
                    doc.sentences.size()] = gold;
      doc.sentences.push_back(std::move(sentence));
    }
    task.corpus.AddDocument(std::move(doc));
  }

  // Candidate extraction through the standard pipeline.
  CandidateExtractor extractor(spec.entity_type1, spec.entity_type2);
  task.candidates = extractor.Extract(task.corpus);
  task.gold.reserve(task.candidates.size());
  for (const Candidate& c : task.candidates) {
    auto it = sentence_gold.find((static_cast<uint64_t>(c.span1.doc) << 20) |
                                 c.span1.sentence);
    if (it == sentence_gold.end()) {
      return Status::Internal("candidate in unknown sentence");
    }
    task.gold.push_back(it->second);
  }

  // Prior-heuristic baseline labels.
  task.ds_labels.reserve(task.candidates.size());
  // The legacy-regex baseline keys on each strong cue's head token only;
  // trailing prepositions ("to", "in") are shared across classes and would
  // destroy its precision.
  std::unordered_set<std::string> strong_pos_stems;
  for (const Cue& cue : spec.cues.strong_pos) {
    strong_pos_stems.insert(Stemmer::Stem(ToLower(cue.front())));
  }
  for (size_t i = 0; i < task.candidates.size(); ++i) {
    const Candidate& c = task.candidates[i];
    Label ds = -1;
    if (task.kb->SubsetSize("PrimaryA") > 0) {
      if (task.kb->Contains("PrimaryA", c.span1.canonical_id,
                            c.span2.canonical_id) ||
          task.kb->Contains("PrimaryB", c.span1.canonical_id,
                            c.span2.canonical_id)) {
        ds = 1;
      }
    }
    // Tasks without a KB (EHR) fall back to the legacy regex-style labeler:
    // a strong positive cue between the spans.
    if (task.kb->SubsetSize("PrimaryA") == 0) {
      CandidateView view(&task.corpus, &c, i);
      for (const std::string& word : view.WordsBetween()) {
        if (strong_pos_stems.count(Stemmer::Stem(ToLower(word))) > 0) {
          ds = 1;
          break;
        }
      }
    }
    task.ds_labels.push_back(ds);
  }

  // Train / dev / test split.
  std::vector<size_t> order(task.candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  state.rng.Shuffle(&order);
  size_t train_end =
      static_cast<size_t>(spec.train_fraction * static_cast<double>(order.size()));
  size_t dev_end = train_end + static_cast<size_t>(spec.dev_fraction *
                                                   static_cast<double>(order.size()));
  task.train_idx.assign(order.begin(), order.begin() + static_cast<long>(train_end));
  task.dev_idx.assign(order.begin() + static_cast<long>(train_end),
                      order.begin() + static_cast<long>(dev_end));
  task.test_idx.assign(order.begin() + static_cast<long>(dev_end), order.end());
  return task;
}

// ------------------------------------------------------------------ Tasks --

namespace {

/// Adds an LF with its Table 6 ablation group tag.
void AddLf(RelationTask* task, LabelingFunction lf, const std::string& group) {
  task->lfs.Add(std::move(lf));
  task->lf_groups.push_back(group);
}

/// Weak-classifier score: cue-balance heuristic over the whole sentence.
std::function<double(const CandidateView&)> CueBalanceScore(
    std::vector<std::string> pos, std::vector<std::string> neg) {
  // Stem the cue lists once at construction; the per-candidate loop then
  // only stems sentence words (through the process-wide stem cache). The
  // score depends on the sentence alone, so it is additionally memoized per
  // (doc, sentence) — candidates sharing a sentence share one computation.
  // The memo is guarded for the parallel applier; scores are pure, so
  // whichever thread computes first wins with an identical value.
  std::vector<std::string> pos_stems, neg_stems;
  pos_stems.reserve(pos.size());
  neg_stems.reserve(neg.size());
  for (const auto& p : pos) pos_stems.push_back(Stemmer::Stem(p));
  for (const auto& n : neg) neg_stems.push_back(Stemmer::Stem(n));
  struct Memo {
    std::shared_mutex mu;
    std::unordered_map<uint64_t, double> scores;
  };
  auto memo = std::make_shared<Memo>();
  return [pos_stems = std::move(pos_stems), neg_stems = std::move(neg_stems),
          memo = std::move(memo)](const CandidateView& view) {
    const Candidate& c = view.candidate();
    uint64_t key = (static_cast<uint64_t>(c.span1.doc) << 32) | c.span1.sentence;
    {
      std::shared_lock<std::shared_mutex> lock(memo->mu);
      auto it = memo->scores.find(key);
      if (it != memo->scores.end()) return it->second;
    }
    int balance = 0;
    std::string lower;
    for (const std::string& word : view.sentence().words) {
      lower.clear();
      for (char ch : word) {
        lower.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
      }
      const std::string& stem = Stemmer::StemCached(lower);
      for (const auto& p : pos_stems) {
        if (stem == p) ++balance;
      }
      for (const auto& n : neg_stems) {
        if (stem == n) --balance;
      }
    }
    double score = Sigmoid(1.2 * static_cast<double>(balance));
    std::unique_lock<std::shared_mutex> lock(memo->mu);
    memo->scores.emplace(key, score);
    return score;
  };
}

size_t Scaled(size_t value, double scale) {
  size_t scaled = static_cast<size_t>(static_cast<double>(value) * scale);
  return std::max<size_t>(scaled, 20);
}

}  // namespace

Result<RelationTask> MakeCdrTask(uint64_t seed, double scale) {
  RelationTaskSpec spec;
  spec.name = "CDR";
  spec.entity_type1 = "chemical";
  spec.entity_type2 = "disease";
  spec.num_documents = Scaled(900, scale);
  spec.num_true_relations = Scaled(500, scale < 0.2 ? 0.4 : 1.0);
  spec.positive_rate = 0.246;
  // CTD pairs co-occur in non-asserting sentences often enough that raw
  // distant supervision is only ~55% precise at candidate level.
  spec.negative_reuses_related_pair = 0.3;
  spec.seed = seed;
  spec.cues.strong_pos = {{"causes"},     {"caused"},    {"induces"},
                          {"induced"},    {"triggers"},  {"aggravates"},
                          {"provokes"},   {"produces"}};
  spec.cues.rare_pos = {{"precipitated"}, {"elicited"}, {"exacerbated"}};
  spec.cues.neg = {{"treats"},   {"prevents"},     {"alleviates"},
                   {"reduces"},  {"improves"},     {"administered", "for"},
                   {"given", "for"}};
  spec.cues.neutral = {{"and"}, {"with"}, {"during"}, {"alongside"}};
  spec.cues.ambiguous = {{"associated", "with"}, {"linked", "to"},
                         {"related", "to"}};
  spec.cues.pos_context = {"adverse", "toxicity", "reaction", "onset",
                           "hospitalized"};
  spec.cues.neg_context = {"therapy", "efficacy", "dose", "trial",
                           "randomized"};
  spec.cues.struct_pos_context = {"developed", "experienced"};
  spec.cues.struct_neg_context = {"study", "protocol"};

  auto task_result = GenerateRelationTask(spec);
  if (!task_result.ok()) return task_result.status();
  RelationTask task = std::move(task_result).value();
  const KnowledgeBase* kb = task.kb.get();

  // --- Text patterns (Table 6 group 1). ---
  AddLf(&task, MakeKeywordBetweenLF("lf_cause", {"cause"}, 1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_caused_exact", {"caused"}, 1, false),
        "pattern");
  AddLf(&task, MakeRegexBetweenLF("lf_caus_regex", "caus", 1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_induce", {"induce"}, 1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_induced_exact", {"induced"}, 1, false),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_trigger", {"trigger"}, 1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_aggravate", {"aggravate"}, 1),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_provoke", {"provoke"}, 1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_produce", {"produce"}, 1), "pattern");
  AddLf(&task, MakeDirectionalKeywordLF("lf_dir_cause", {"cause"}, 1, -1),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_assoc", {"associated"}, 1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_linked", {"linked"}, 1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_related", {"related"}, 1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_treat", {"treat"}, -1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_prevent", {"prevent"}, -1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_alleviate", {"alleviate"}, -1),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_reduce", {"reduce"}, -1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_improve", {"improve"}, -1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_administered", {"administered"}, -1),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_given", {"given"}, -1), "pattern");
  AddLf(&task, MakeRegexBetweenLF("lf_treat_regex", "treat|prevent", -1),
        "pattern");
  AddLf(&task,
        MakeWeakClassifierLF(
            "lf_clf_cues",
            CueBalanceScore({"cause", "induce", "trigger"},
                            {"treat", "prevent", "reduce"}),
            0.35, 0.65),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_during", {"during"}, -1), "pattern");

  // --- Distant supervision (Table 6 group 2). ---
  AddLf(&task, MakeOntologyLF("lf_kb_causes_a", kb, "PrimaryA", 1), "distant");
  AddLf(&task, MakeOntologyLF("lf_kb_causes_b", kb, "PrimaryB", 1), "distant");
  AddLf(&task, MakeOntologyLF("lf_kb_treats", kb, "Anti", -1), "distant");
  AddLf(&task, MakeOntologyLF("lf_kb_curated", kb, "PrimaryC", 1), "distant");

  // --- Structure-based (Table 6 group 3). ---
  AddLf(&task, MakeDistanceLF("lf_far", 8, -1), "structure");
  AddLf(&task,
        MakeContextKeywordLF("lf_ctx_developed", {"developed", "experienced"},
                             3, 1),
        "structure");
  AddLf(&task,
        MakeContextKeywordLF("lf_ctx_study", {"study", "protocol"}, 3, -1),
        "structure");
  AddLf(&task,
        MakeGuardedLF("lf_close_cause",
                      MakeKeywordBetweenLF("lf_cause_inner", {"cause"}, 1),
                      [](const CandidateView& v) {
                        return v.TokenDistance() <= 3;
                      }),
        "structure");
  AddLf(&task,
        MakeGuardedLF("lf_close_kb",
                      MakeOntologyLF("lf_kb_inner", kb, "PrimaryA", 1),
                      [](const CandidateView& v) {
                        return v.TokenDistance() <= 5;
                      }),
        "structure");
  AddLf(&task,
        MakeContextKeywordLF("lf_ctx_dose", {"randomized"}, 4, -1),
        "structure");
  return task;
}

Result<RelationTask> MakeSpousesTask(uint64_t seed, double scale) {
  RelationTaskSpec spec;
  spec.name = "Spouses";
  spec.entity_type1 = "person";
  spec.entity_type2 = "person";
  spec.num_entities1 = 150;
  spec.num_documents = Scaled(2073, scale);
  spec.num_true_relations = Scaled(400, scale < 0.2 ? 0.4 : 1.0);
  spec.positive_rate = 0.083;
  spec.seed = seed;
  spec.cues.strong_pos = {{"married"}, {"wife"},      {"husband"},
                          {"wed"},     {"spouse"},    {"honeymoon", "with"}};
  spec.cues.rare_pos = {{"eloped", "with"}, {"newlyweds"}};
  spec.cues.neg = {{"brother"},   {"sister"},  {"colleague"},
                   {"coworker"},  {"boss", "of"}, {"hired"}};
  spec.cues.neutral = {{"and"}, {"with"}, {"met"}, {"alongside"}};
  spec.cues.ambiguous = {{"partner"}, {"dated"}};
  spec.cues.pos_context = {"wedding", "anniversary", "couple", "romance"};
  spec.cues.neg_context = {"company", "office", "team", "project"};
  spec.cues.struct_pos_context = {"family"};
  spec.cues.struct_neg_context = {"business"};

  auto task_result = GenerateRelationTask(spec);
  if (!task_result.ok()) return task_result.status();
  RelationTask task = std::move(task_result).value();
  const KnowledgeBase* kb = task.kb.get();

  AddLf(&task, MakeKeywordBetweenLF("lf_married", {"married", "wed"}, 1),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_wife", {"wife"}, 1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_husband", {"husband"}, 1), "pattern");
  AddLf(&task,
        MakeKeywordBetweenLF("lf_spouse", {"spouse", "honeymoon"}, 1),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_partner", {"partner"}, 1), "pattern");
  AddLf(&task,
        MakeKeywordBetweenLF("lf_family_rel", {"brother", "sister"}, -1),
        "pattern");
  AddLf(&task,
        MakeKeywordBetweenLF("lf_work_rel", {"colleague", "coworker", "boss"},
                             -1),
        "pattern");
  AddLf(&task, MakeRegexBetweenLF("lf_marri_regex", "marri|wed", 1), "pattern");
  AddLf(&task, MakeOntologyLF("lf_kb_dbpedia", kb, "PrimaryA", 1, true),
        "distant");
  AddLf(&task, MakeDistanceLF("lf_far", 10, -1), "structure");
  AddLf(&task, MakeContextKeywordLF("lf_ctx_family", {"family"}, 3, 1),
        "structure");
  return task;
}

Result<RelationTask> MakeEhrTask(uint64_t seed, double scale) {
  RelationTaskSpec spec;
  spec.name = "EHR";
  spec.entity_type1 = "finding";
  spec.entity_type2 = "anatomy";
  spec.num_documents = Scaled(4000, scale);
  spec.num_true_relations = Scaled(600, scale < 0.2 ? 0.4 : 1.0);
  spec.positive_rate = 0.368;
  spec.seed = seed;
  // EHR has no knowledge base: zero KB coverage makes GenerateRelationTask
  // fall back to the legacy-regex baseline for ds_labels.
  spec.kb_coverage_a = 0.0;
  spec.kb_noise_a = 0.0;
  spec.kb_coverage_b = 0.0;
  spec.kb_noise_b = 0.0;
  spec.cues.strong_pos = {{"localized", "to"},  {"radiating", "to"},
                          {"tenderness", "over"}, {"aching", "in"},
                          {"felt", "in"},        {"worst", "at"}};
  spec.cues.rare_pos = {{"involving"}, {"along", "the"}};
  spec.cues.neg = {{"without"},         {"denies"},
                   {"unrelated", "to"}, {"resolved", "in"},
                   {"negative", "for"}};
  spec.cues.neutral = {{"and"}, {"with"}, {"noted", "near"}};
  spec.cues.ambiguous = {{"near", "the"}};
  spec.cues.pos_context = {"severe", "worsening", "chronic", "acute"};
  spec.cues.neg_context = {"normal", "unremarkable", "stable", "benign"};
  spec.cues.struct_pos_context = {"reports", "complains"};
  spec.cues.struct_neg_context = {"history", "prior"};

  auto task_result = GenerateRelationTask(spec);
  if (!task_result.ok()) return task_result.status();
  RelationTask task = std::move(task_result).value();

  AddLf(&task, MakeKeywordBetweenLF("lf_localized", {"localized"}, 1),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_radiating", {"radiating"}, 1),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_tenderness", {"tenderness"}, 1),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_aching", {"aching"}, 1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_felt", {"felt"}, 1, false), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_worst", {"worst"}, 1, false),
        "pattern");
  AddLf(&task,
        MakeKeywordBetweenLF("lf_localized_exact", {"localized"}, 1, false),
        "pattern");
  AddLf(&task, MakeRegexBetweenLF("lf_regex_loc", "locali|radiat", 1),
        "pattern");
  AddLf(&task, MakeRegexBetweenLF("lf_regex_felt", "felt in|aching in", 1),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_near_amb", {"near"}, 1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_without", {"without"}, -1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_denies", {"denies"}, -1, false),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_unrelated", {"unrelated"}, -1),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_resolved", {"resolved"}, -1),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_negative", {"negative"}, -1),
        "pattern");
  AddLf(&task,
        MakeRegexBetweenLF("lf_regex_neg", "without|unrelated|denies", -1),
        "pattern");
  AddLf(&task,
        MakeWeakClassifierLF(
            "lf_clf_findings",
            CueBalanceScore({"localized", "radiating", "tenderness"},
                            {"without", "unrelated", "resolved"}),
            0.35, 0.65),
        "pattern");
  AddLf(&task,
        MakeWeakClassifierLF(
            "lf_clf_negation",
            CueBalanceScore({}, {"denies", "without", "negative"}), 0.35,
            0.65),
        "pattern");
  AddLf(&task, MakeDistanceLF("lf_far", 7, -1), "structure");
  AddLf(&task, MakeContextKeywordLF("lf_ctx_reports", {"reports"}, 3, 1),
        "structure");
  AddLf(&task, MakeContextKeywordLF("lf_ctx_complains", {"complains"}, 3, 1),
        "structure");
  AddLf(&task, MakeContextKeywordLF("lf_ctx_history", {"history", "prior"}, 3,
                                    -1),
        "structure");
  AddLf(&task,
        MakeGuardedLF("lf_close_loc",
                      MakeKeywordBetweenLF("lf_loc_inner", {"localized"}, 1),
                      [](const CandidateView& v) {
                        return v.TokenDistance() <= 2;
                      }),
        "structure");
  AddLf(&task, MakeContextKeywordLF("lf_ctx_acuity", {"presenting"}, 4, 1),
        "structure");
  return task;
}

Result<RelationTask> MakeChemTask(uint64_t seed, double scale) {
  RelationTaskSpec spec;
  spec.name = "Chem";
  spec.entity_type1 = "compound";
  spec.entity_type2 = "compound";
  spec.num_entities1 = 150;
  spec.num_documents = Scaled(1753, scale);
  spec.num_true_relations = Scaled(400, scale < 0.2 ? 0.4 : 1.0);
  spec.positive_rate = 0.041;
  spec.min_pair_sentences_per_doc = 6;
  spec.max_pair_sentences_per_doc = 12;
  spec.seed = seed;
  spec.cues.strong_pos = {{"yields"},      {"yielded"},  {"produces"},
                          {"forms"},       {"generates"}, {"synthesizes"},
                          {"converted", "to"}};
  spec.cues.rare_pos = {{"affords"}, {"furnishes"}};
  spec.cues.neg = {{"inhibits"}, {"degrades"}, {"consumes"},
                   {"dissolved", "in"}};
  spec.cues.neutral = {{"and"}, {"with"}, {"mixed", "with"},
                       {"in", "presence", "of"}};
  spec.cues.ambiguous = {{"reacts", "with"}};
  spec.cues.pos_context = {"reaction", "product", "synthesis"};
  spec.cues.neg_context = {"solvent", "buffer", "assay"};
  spec.cues.struct_pos_context = {"catalyzed"};
  spec.cues.struct_neg_context = {"stored"};

  auto task_result = GenerateRelationTask(spec);
  if (!task_result.ok()) return task_result.status();
  RelationTask task = std::move(task_result).value();
  const KnowledgeBase* kb = task.kb.get();

  AddLf(&task, MakeKeywordBetweenLF("lf_yield", {"yield"}, 1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_produce", {"produce"}, 1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_form", {"form"}, 1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_generate", {"generate"}, 1),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_synthesize", {"synthesize"}, 1),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_convert", {"converted"}, 1),
        "pattern");
  AddLf(&task, MakeRegexBetweenLF("lf_yield_regex", "yield|afford", 1),
        "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_react_amb", {"reacts"}, 1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_inhibit", {"inhibit"}, -1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_degrade", {"degrade"}, -1), "pattern");
  AddLf(&task, MakeKeywordBetweenLF("lf_consume", {"consume"}, -1), "pattern");
  AddLf(&task,
        MakeWeakClassifierLF(
            "lf_clf_chem",
            CueBalanceScore({"yield", "produce", "form"},
                            {"inhibit", "degrade"}),
            0.35, 0.65),
        "pattern");
  AddLf(&task, MakeOntologyLF("lf_kb_metacyc_a", kb, "PrimaryA", 1),
        "distant");
  AddLf(&task, MakeOntologyLF("lf_kb_metacyc_b", kb, "PrimaryB", 1),
        "distant");
  AddLf(&task, MakeDistanceLF("lf_far", 9, -1), "structure");
  AddLf(&task, MakeContextKeywordLF("lf_ctx_catalyzed", {"catalyzed"}, 3, 1),
        "structure");
  return task;
}

}  // namespace snorkel
