#ifndef SNORKEL_SYNTH_CROSSMODAL_H_
#define SNORKEL_SYNTH_CROSSMODAL_H_

#include <string>
#include <vector>

#include "core/label_matrix.h"
#include "core/types.h"
#include "data/candidate.h"
#include "data/context.h"
#include "disc/features.h"
#include "lf/labeling_function.h"
#include "util/status.h"

namespace snorkel {

/// The cross-modal radiology task (§4.1.2): labeling functions read the
/// narrative text *report* while the discriminative model trains on a
/// totally separate *image* modality, simulated as a feature vector whose
/// distribution depends on the same latent abnormality label (DESIGN.md
/// substitutions). One document per report; one unary candidate per report.
struct RadiologyTask {
  std::string name = "Radiology";
  Corpus corpus;
  std::vector<Candidate> candidates;  // Unary: span1 == span2.
  std::vector<Label> gold;            // +1 abnormal, -1 normal.
  LabelingFunctionSet lfs;            // Text-report LFs.
  /// The image modality: one dense feature vector per report.
  std::vector<FeatureVector> image_features;
  size_t image_feature_dim = 64;
  std::vector<size_t> train_idx;
  std::vector<size_t> dev_idx;
  std::vector<size_t> test_idx;
};

struct RadiologyOptions {
  size_t num_reports = 3851;  // Table 2.
  double abnormal_rate = 0.36;
  size_t image_feature_dim = 64;
  /// Separation (in noise SDs) between the class-conditional image feature
  /// means; controls how learnable the image modality is. The default puts
  /// the Bayes AUC near the paper's ~0.72-0.76 range.
  double image_separation = 0.08;
  uint64_t seed = 42;
};

Result<RadiologyTask> MakeRadiologyTask(const RadiologyOptions& options = {});

/// The crowdsourced weather-sentiment task (§4.1.2): each crowd worker is a
/// labeling function over 5 sentiment classes; the discriminative model is a
/// text classifier over the tweets, independent of the workers.
struct CrowdTask {
  std::string name = "Crowd";
  std::vector<std::vector<std::string>> tweets;  // Tokenized items.
  std::vector<Label> gold;                       // 1..5.
  /// Worker votes as a multi-class label matrix (one column per worker).
  LabelMatrix worker_matrix;
  std::vector<double> worker_accuracies;  // Planted, for oracle checks.
  /// Hashed bag-of-words features of the tweets (the second modality).
  std::vector<FeatureVector> text_features;
  size_t num_buckets = 1 << 16;
  int cardinality = 5;
  std::vector<size_t> train_idx;
  std::vector<size_t> dev_idx;
  std::vector<size_t> test_idx;
};

struct CrowdOptions {
  size_t num_items = 505;     // Table 2.
  size_t num_workers = 102;   // Table 2 (#LFs).
  /// Expected number of workers voting per item (the paper's task assigned
  /// ~20 contributors per tweet).
  double votes_per_item = 20.0;
  /// Worker accuracy range; the task is described as difficult with
  /// unfiltered workers, so the floor is near chance (0.2 for 5 classes).
  double min_worker_accuracy = 0.25;
  double max_worker_accuracy = 0.60;
  uint64_t seed = 42;
};

Result<CrowdTask> MakeCrowdTask(const CrowdOptions& options = {});

/// Crowd-SERVING variant of the §4.1.2 task: unlike CrowdTask (whose worker
/// votes are materialized directly as a LabelMatrix), every simulated
/// worker here is a real LabelingFunction over a corpus of candidate items,
/// so the full deployment stack — LF application at cardinality K, DAWD
/// snapshot capture, LabelService, ShardRouter — can run the K-class
/// workload end-to-end. Worker votes are pure functions of
/// (seed, worker, row index): deterministic, recomputable on any replica,
/// and index-dependent (exercising the sharded tier's index-preserving ref
/// fan-out). Each item's candidate carries a distinct canonical id, so
/// content-hash shard placement spreads traffic.
struct CrowdServingTask {
  std::string name = "CrowdServing";
  Corpus corpus;
  std::vector<Candidate> candidates;  // One per item.
  LabelingFunctionSet lfs;            // One per worker.
  std::vector<Label> gold;            // Planted, 1..K.
  int cardinality = 5;
};

struct CrowdServingOptions {
  size_t num_items = 500;
  size_t num_workers = 24;
  int cardinality = 5;  // K sentiment classes.
  /// P(a worker votes on an item).
  double coverage = 0.4;
  /// Worker accuracy range (P(vote = gold | votes)); worker j interpolates
  /// linearly between the two.
  double min_accuracy = 0.35;
  double max_accuracy = 0.75;
  uint64_t seed = 7;
};

Result<CrowdServingTask> MakeCrowdServingTask(
    const CrowdServingOptions& options = {});

}  // namespace snorkel

#endif  // SNORKEL_SYNTH_CROSSMODAL_H_
