#include "synth/crossmodal.h"

#include <tuple>

#include "lf/declarative.h"
#include "util/hash.h"
#include "util/random.h"

namespace snorkel {

namespace {

const std::vector<std::string>& AbnormalCues() {
  static const std::vector<std::string> kCues = {
      "opacity", "consolidation", "effusion", "infiltrate", "cardiomegaly"};
  return kCues;
}

const std::vector<std::string>& RareAbnormalCues() {
  static const std::vector<std::string> kCues = {"blunting", "atelectasis"};
  return kCues;
}

const std::vector<std::string>& NormalCues() {
  static const std::vector<std::string> kCues = {"clear", "normal",
                                                 "unremarkable", "intact"};
  return kCues;
}

std::string PickWord(Rng* rng, const std::vector<std::string>& bank) {
  return bank[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(bank.size()) - 1))];
}

}  // namespace

Result<RadiologyTask> MakeRadiologyTask(const RadiologyOptions& options) {
  if (options.num_reports == 0 || options.image_feature_dim == 0) {
    return Status::InvalidArgument("degenerate radiology task sizes");
  }
  Rng rng(options.seed);
  RadiologyTask task;
  task.image_feature_dim = options.image_feature_dim;

  // Class-conditional image feature means.
  std::vector<double> mu_pos(options.image_feature_dim);
  std::vector<double> mu_neg(options.image_feature_dim);
  for (size_t f = 0; f < options.image_feature_dim; ++f) {
    double direction = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    mu_pos[f] = direction * options.image_separation;
    mu_neg[f] = -direction * options.image_separation;
  }

  std::vector<std::string> fillers = {"lungs",  "chest", "view", "exam",
                                      "image",  "study", "seen", "noted",
                                      "within", "limits"};
  for (size_t i = 0; i < options.num_reports; ++i) {
    Label y = rng.Bernoulli(options.abnormal_rate) ? 1 : -1;
    task.gold.push_back(y);

    // ---- Text report modality. ----
    Document doc;
    doc.name = "report" + std::to_string(i);
    size_t num_sentences = static_cast<size_t>(rng.UniformInt(2, 4));
    for (size_t s = 0; s < num_sentences; ++s) {
      Sentence sentence;
      size_t len = static_cast<size_t>(rng.UniformInt(4, 8));
      for (size_t w = 0; w < len; ++w) {
        sentence.words.push_back(PickWord(&rng, fillers));
      }
      doc.sentences.push_back(std::move(sentence));
    }
    // Inject cue words consistent with the label (with some noise).
    auto inject = [&](const std::string& word) {
      size_t s = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(doc.sentences.size()) - 1));
      doc.sentences[s].words.push_back(word);
    };
    if (y > 0) {
      // 85% of abnormal reports carry an LF-covered cue; 10% only a rare one.
      double r = rng.Uniform();
      if (r < 0.85) {
        inject(PickWord(&rng, AbnormalCues()));
        if (rng.Bernoulli(0.4)) inject(PickWord(&rng, AbnormalCues()));
      } else if (r < 0.95) {
        inject(PickWord(&rng, RareAbnormalCues()));
      }
      if (rng.Bernoulli(0.08)) inject(PickWord(&rng, NormalCues()));  // Noise.
    } else {
      if (rng.Bernoulli(0.8)) inject(PickWord(&rng, NormalCues()));
      if (rng.Bernoulli(0.06)) inject(PickWord(&rng, AbnormalCues()));
    }
    size_t doc_idx = task.corpus.AddDocument(std::move(doc));

    // Unary candidate over the report's first token.
    Span span;
    span.doc = static_cast<uint32_t>(doc_idx);
    span.sentence = 0;
    span.word_start = 0;
    span.word_end = 1;
    span.entity_type = "report";
    span.canonical_id = "report" + std::to_string(i);
    task.candidates.push_back(Candidate{span, span});

    // ---- Image modality. ----
    FeatureVector image;
    const auto& mu = y > 0 ? mu_pos : mu_neg;
    for (size_t f = 0; f < options.image_feature_dim; ++f) {
      image.Add(static_cast<uint32_t>(f),
                static_cast<float>(mu[f] + rng.Normal(0.0, 1.0)));
    }
    task.image_features.push_back(std::move(image));
  }

  // ---- Report labeling functions (18, Table 2). ----
  auto& lfs = task.lfs;
  for (const std::string& cue : AbnormalCues()) {
    lfs.Add(MakeDocumentKeywordLF("lf_" + cue, {cue}, 1));
  }
  for (const std::string& cue : NormalCues()) {
    lfs.Add(MakeDocumentKeywordLF("lf_" + cue, {cue}, -1));
  }
  lfs.Add(MakeDocumentKeywordLF("lf_opacity_exact", {"opacity"}, 1, false));
  lfs.Add(MakeDocumentKeywordLF("lf_effusion_exact", {"effusion"}, 1, false));
  lfs.Add(MakeDocumentKeywordLF("lf_infiltrate_exact", {"infiltrate"}, 1,
                                false));
  lfs.Add(MakeDocumentKeywordLF("lf_clear_exact", {"clear"}, -1, false));
  lfs.Add(MakeDocumentKeywordLF(
      "lf_abn_any", {"opacity", "consolidation", "infiltrate"}, 1));
  lfs.Add(MakeDocumentKeywordLF("lf_norm_any", {"normal", "unremarkable"}, -1));
  lfs.Add(MakeSentenceKeywordLF("lf_first_sent_clear", {"clear"}, -1));
  lfs.Add(MakeWeakClassifierLF(
      "lf_clf_report",
      [](const CandidateView& view) {
        const Document& doc =
            view.corpus().document(view.candidate().span1.doc);
        int balance = 0;
        for (const Sentence& s : doc.sentences) {
          for (const std::string& w : s.words) {
            for (const auto& cue : AbnormalCues()) {
              if (w == cue) ++balance;
            }
            for (const auto& cue : NormalCues()) {
              if (w == cue) --balance;
            }
          }
        }
        return 0.5 + 0.2 * static_cast<double>(balance);
      },
      0.35, 0.65));
  lfs.Add(MakeWeakClassifierLF(
      "lf_clf_length",
      [](const CandidateView& view) {
        const Document& doc =
            view.corpus().document(view.candidate().span1.doc);
        size_t words = 0;
        for (const Sentence& s : doc.sentences) words += s.words.size();
        // Longer reports skew abnormal (more findings described) — weakly.
        return words > 18 ? 0.62 : 0.45;
      },
      0.4, 0.6));

  // ---- Splits. ----
  std::vector<size_t> order(options.num_reports);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  size_t train_end = static_cast<size_t>(0.8 * static_cast<double>(order.size()));
  size_t dev_end = train_end + static_cast<size_t>(
                                   0.1 * static_cast<double>(order.size()));
  task.train_idx.assign(order.begin(), order.begin() + static_cast<long>(train_end));
  task.dev_idx.assign(order.begin() + static_cast<long>(train_end),
                      order.begin() + static_cast<long>(dev_end));
  task.test_idx.assign(order.begin() + static_cast<long>(dev_end), order.end());
  return task;
}

Result<CrowdTask> MakeCrowdTask(const CrowdOptions& options) {
  if (options.num_items == 0 || options.num_workers == 0) {
    return Status::InvalidArgument("degenerate crowd task sizes");
  }
  if (options.min_worker_accuracy > options.max_worker_accuracy) {
    return Status::InvalidArgument("worker accuracy range inverted");
  }
  Rng rng(options.seed);
  CrowdTask task;
  constexpr int kClasses = 5;
  task.cardinality = kClasses;

  // Class-signature vocabularies (sentiment 1..5) plus shared weather words.
  const std::vector<std::vector<std::string>> kSignatures = {
      {"awful", "miserable", "terrible", "dreadful", "hate", "worst"},
      {"gloomy", "gray", "dull", "meh", "damp", "chilly"},
      {"okay", "fine", "average", "mild", "usual", "typical"},
      {"nice", "pleasant", "sunny", "good", "warm", "bright"},
      {"gorgeous", "amazing", "perfect", "beautiful", "love", "best"}};
  const std::vector<std::string> kShared = {"weather", "today",  "outside",
                                            "sky",     "morning", "rain",
                                            "wind",    "clouds",  "forecast"};

  double vote_propensity =
      options.votes_per_item / static_cast<double>(options.num_workers);
  for (size_t w = 0; w < options.num_workers; ++w) {
    task.worker_accuracies.push_back(rng.Uniform(
        options.min_worker_accuracy, options.max_worker_accuracy));
  }

  std::vector<std::tuple<size_t, size_t, Label>> triplets;
  FeatureHasher hasher(task.num_buckets);
  for (size_t i = 0; i < options.num_items; ++i) {
    Label gold = static_cast<Label>(rng.UniformInt(1, kClasses));
    task.gold.push_back(gold);

    // Tweet text: signature words mixed with shared weather vocabulary.
    std::vector<std::string> tweet;
    size_t len = static_cast<size_t>(rng.UniformInt(6, 12));
    const auto& sig = kSignatures[static_cast<size_t>(gold) - 1];
    for (size_t t = 0; t < len; ++t) {
      if (rng.Bernoulli(0.28)) {
        tweet.push_back(PickWord(&rng, sig));
      } else if (rng.Bernoulli(0.30)) {
        // Cross-class noise word: the paper stresses these tweets are often
        // ambiguous even for humans.
        const auto& other = kSignatures[static_cast<size_t>(
            rng.UniformInt(0, kClasses - 1))];
        tweet.push_back(PickWord(&rng, other));
      } else {
        tweet.push_back(PickWord(&rng, kShared));
      }
    }
    task.text_features.push_back(HashBagOfWords(tweet, hasher, "tweet"));
    task.tweets.push_back(std::move(tweet));

    // Worker votes: correct with the worker's accuracy, otherwise one of
    // the adjacent sentiment classes (common annotator confusion) or any.
    for (size_t w = 0; w < options.num_workers; ++w) {
      if (!rng.Bernoulli(vote_propensity)) continue;
      Label vote;
      if (rng.Bernoulli(task.worker_accuracies[w])) {
        vote = gold;
      } else if (rng.Bernoulli(0.6)) {
        vote = gold + (rng.Bernoulli(0.5) ? 1 : -1);
        vote = std::min<Label>(kClasses, std::max<Label>(1, vote));
      } else {
        vote = static_cast<Label>(rng.UniformInt(1, kClasses));
      }
      triplets.emplace_back(i, w, vote);
    }
  }

  auto matrix = LabelMatrix::FromTriplets(options.num_items,
                                          options.num_workers, triplets,
                                          kClasses);
  if (!matrix.ok()) return matrix.status();
  task.worker_matrix = std::move(matrix).value();

  std::vector<size_t> order(options.num_items);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  size_t train_end = static_cast<size_t>(0.8 * static_cast<double>(order.size()));
  size_t dev_end = train_end + static_cast<size_t>(
                                   0.1 * static_cast<double>(order.size()));
  task.train_idx.assign(order.begin(), order.begin() + static_cast<long>(train_end));
  task.dev_idx.assign(order.begin() + static_cast<long>(train_end),
                      order.begin() + static_cast<long>(dev_end));
  task.test_idx.assign(order.begin() + static_cast<long>(dev_end), order.end());
  return task;
}

namespace {

/// Deterministic per-(stream, index) random double in [0, 1): the vote
/// source for simulated crowd workers. A pure function of its arguments —
/// every replica, shard, and re-application reproduces the same vote.
double CrowdUniform(uint64_t seed, uint64_t stream, uint64_t index) {
  SplitMix64 mix(HashCombine(HashCombine(seed, stream + 1), index + 1));
  return mix.Uniform();
}

/// Maps an internal 1..K class draw to the matrix label convention:
/// K-class tasks vote {1..K} directly; binary tasks vote {+1, -1}
/// (class 1 ↦ +1, class 2 ↦ -1, matching DawidSkeneModel::ClassToLabel).
Label CrowdClassToLabel(Label cls, int k) {
  if (k != 2) return cls;
  return cls == 1 ? 1 : -1;
}

}  // namespace

Result<CrowdServingTask> MakeCrowdServingTask(
    const CrowdServingOptions& options) {
  if (options.num_items == 0 || options.num_workers == 0) {
    return Status::InvalidArgument("degenerate crowd serving task sizes");
  }
  if (options.cardinality < 2) {
    return Status::InvalidArgument("cardinality must be >= 2");
  }
  if (!(options.coverage > 0.0) || options.coverage > 1.0 ||
      options.min_accuracy <= 0.0 || options.max_accuracy > 1.0 ||
      options.min_accuracy > options.max_accuracy) {
    return Status::InvalidArgument("crowd serving rates out of range");
  }
  CrowdServingTask task;
  task.cardinality = options.cardinality;
  const uint64_t seed = options.seed;
  const int k = options.cardinality;

  // One document per item; distinct canonical ids give every candidate a
  // distinct content-hash shard key.
  for (size_t i = 0; i < options.num_items; ++i) {
    const std::string id = std::to_string(i);
    Document doc;
    doc.name = "tweet" + id;
    Sentence s;
    s.words = {"tweet", id, "text"};
    s.mentions = {Mention{0, 1, "item", "I" + id},
                  Mention{2, 3, "anchor", "A" + id}};
    doc.sentences = {s};
    task.corpus.AddDocument(std::move(doc));
    task.gold.push_back(CrowdClassToLabel(
        static_cast<Label>(CrowdUniform(seed, 0, i) * k) + 1, k));
  }
  task.candidates = CandidateExtractor("item", "anchor").Extract(task.corpus);
  if (task.candidates.size() != options.num_items) {
    return Status::Internal("crowd serving candidate extraction mismatch");
  }

  // One LF per worker: abstain/vote and correct/confused decisions are
  // drawn from disjoint deterministic streams keyed on (worker, row index).
  for (size_t j = 0; j < options.num_workers; ++j) {
    double accuracy =
        options.min_accuracy +
        (options.max_accuracy - options.min_accuracy) *
            (options.num_workers == 1
                 ? 1.0
                 : static_cast<double>(j) /
                       static_cast<double>(options.num_workers - 1));
    double coverage = options.coverage;
    task.lfs.Add(LabelingFunction(
        "worker_" + std::to_string(j), "v1",
        [seed, j, k, coverage, accuracy](const CandidateView& view) -> Label {
          uint64_t i = view.index();
          if (CrowdUniform(seed, 1000 + j, i) >= coverage) return kAbstain;
          Label gold = static_cast<Label>(CrowdUniform(seed, 0, i) * k) + 1;
          if (CrowdUniform(seed, 2000 + j, i) < accuracy) {
            return CrowdClassToLabel(gold, k);
          }
          // Uniform over the k-1 wrong classes.
          Label wrong = static_cast<Label>(CrowdUniform(seed, 3000 + j, i) *
                                           (k - 1)) +
                        1;
          if (wrong >= gold) ++wrong;
          return CrowdClassToLabel(wrong, k);
        }));
  }
  return task;
}

}  // namespace snorkel
