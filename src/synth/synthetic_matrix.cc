#include "synth/synthetic_matrix.h"

#include <tuple>

#include "core/advantage.h"
#include "util/random.h"

namespace snorkel {

Result<SyntheticDataset> SyntheticMatrixGenerator::Generate(
    const SyntheticMatrixOptions& options,
    const std::vector<SyntheticLfSpec>& lfs) {
  if (options.num_points == 0) {
    return Status::InvalidArgument("num_points must be positive");
  }
  if (options.class_balance <= 0.0 || options.class_balance >= 1.0) {
    return Status::InvalidArgument("class_balance must be in (0, 1)");
  }
  for (size_t j = 0; j < lfs.size(); ++j) {
    const auto& lf = lfs[j];
    if (lf.accuracy < 0.0 || lf.accuracy > 1.0 || lf.propensity < 0.0 ||
        lf.propensity > 1.0 || lf.copy_prob < 0.0 || lf.copy_prob > 1.0) {
      return Status::InvalidArgument("LF spec parameters must be in [0, 1]");
    }
    if (lf.copy_of >= static_cast<int>(j)) {
      return Status::InvalidArgument(
          "copy_of must reference a lower LF index");
    }
  }

  Rng rng(options.seed);
  size_t m = options.num_points;
  size_t n = lfs.size();

  std::vector<Label> gold(m);
  std::vector<std::tuple<size_t, size_t, Label>> triplets;
  std::vector<Label> row(n, kAbstain);
  for (size_t i = 0; i < m; ++i) {
    Label y = rng.Bernoulli(options.class_balance) ? 1 : -1;
    gold[i] = y;
    for (size_t j = 0; j < n; ++j) {
      const auto& lf = lfs[j];
      if (lf.copy_of >= 0 && rng.Bernoulli(lf.copy_prob)) {
        row[j] = row[static_cast<size_t>(lf.copy_of)];
      } else if (rng.Bernoulli(lf.propensity)) {
        row[j] = rng.Bernoulli(lf.accuracy) ? y : static_cast<Label>(-y);
      } else {
        row[j] = kAbstain;
      }
      if (row[j] != kAbstain) triplets.emplace_back(i, j, row[j]);
    }
  }

  auto matrix = LabelMatrix::FromTriplets(m, n, triplets, /*cardinality=*/2);
  if (!matrix.ok()) return matrix.status();

  SyntheticDataset dataset{std::move(matrix).value(), std::move(gold), {}, {}};
  dataset.true_weights.reserve(n);
  for (const auto& lf : lfs) {
    // A copier's effective accuracy is its source's when copying.
    double alpha = lf.copy_of >= 0 && lf.copy_prob >= 1.0
                       ? lfs[static_cast<size_t>(lf.copy_of)].accuracy
                       : lf.accuracy;
    dataset.true_weights.push_back(AccuracyToWeight(alpha));
  }
  for (size_t j = 0; j < n; ++j) {
    if (lfs[j].copy_of >= 0) {
      dataset.true_correlations.push_back(
          CorrelationPair{static_cast<size_t>(lfs[j].copy_of), j});
    }
  }
  return dataset;
}

Result<SyntheticDataset> SyntheticMatrixGenerator::GenerateIid(
    size_t num_points, size_t num_lfs, double accuracy, double propensity,
    uint64_t seed) {
  std::vector<SyntheticLfSpec> lfs(
      num_lfs, SyntheticLfSpec{accuracy, propensity, -1, 1.0});
  return Generate({num_points, 0.5, seed}, lfs);
}

Result<SyntheticDataset> SyntheticMatrixGenerator::GenerateExample31(
    size_t num_points, size_t num_correlated, size_t num_independent,
    double corr_accuracy, double indep_accuracy, uint64_t seed) {
  std::vector<SyntheticLfSpec> lfs;
  for (size_t j = 0; j < num_correlated; ++j) {
    SyntheticLfSpec spec{corr_accuracy, 1.0, -1, 1.0};
    if (j > 0) spec.copy_of = 0;  // Perfect copies of the head.
    lfs.push_back(spec);
  }
  for (size_t j = 0; j < num_independent; ++j) {
    lfs.push_back(SyntheticLfSpec{indep_accuracy, 1.0, -1, 1.0});
  }
  return Generate({num_points, 0.5, seed}, lfs);
}

Result<SyntheticDataset> SyntheticMatrixGenerator::GenerateClustered(
    size_t num_points, size_t num_clusters, size_t cluster_size,
    size_t num_independent, double accuracy, double propensity,
    double copy_prob, uint64_t seed) {
  std::vector<SyntheticLfSpec> lfs;
  for (size_t c = 0; c < num_clusters; ++c) {
    int head = static_cast<int>(lfs.size());
    lfs.push_back(SyntheticLfSpec{accuracy, propensity, -1, 1.0});
    for (size_t s = 1; s < cluster_size; ++s) {
      lfs.push_back(SyntheticLfSpec{accuracy, propensity, head, copy_prob});
    }
  }
  for (size_t j = 0; j < num_independent; ++j) {
    lfs.push_back(SyntheticLfSpec{accuracy, propensity, -1, 1.0});
  }
  return Generate({num_points, 0.5, seed}, lfs);
}

}  // namespace snorkel
