#ifndef SNORKEL_SYNTH_RELATION_TASK_H_
#define SNORKEL_SYNTH_RELATION_TASK_H_

#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "data/candidate.h"
#include "data/context.h"
#include "data/knowledge_base.h"
#include "lf/labeling_function.h"
#include "util/status.h"

namespace snorkel {

/// A cue phrase: one or more tokens inserted between the two entity spans.
using Cue = std::vector<std::string>;

/// Vocabulary banks driving sentence generation for a relation task. The
/// split between "covered" and "rare" positive cues is what reproduces the
/// paper's key generalization effect (Example 2.5): rare-cue positives are
/// invisible to every LF but still carry the discriminative context signal.
struct CueBank {
  std::vector<Cue> strong_pos;  ///< Positive cues covered by pattern LFs.
  std::vector<Cue> rare_pos;    ///< Positive cues NO labeling function knows.
  std::vector<Cue> neg;         ///< Anti-relation cues (e.g. "treats").
  std::vector<Cue> neutral;     ///< Plain co-occurrence cues.
  std::vector<Cue> ambiguous;   ///< Cues used in both classes ("associated").
  /// Context distractor words correlated with the label but used by NO LF —
  /// the signal only the discriminative model can exploit.
  std::vector<std::string> pos_context;
  std::vector<std::string> neg_context;
  /// Context words that structure-based LFs do use (window heuristics).
  std::vector<std::string> struct_pos_context;
  std::vector<std::string> struct_neg_context;
};

/// Generation parameters for one synthetic relation-extraction task.
struct RelationTaskSpec {
  std::string name;
  std::string entity_type1;
  std::string entity_type2;
  size_t num_entities1 = 120;
  size_t num_entities2 = 120;
  size_t num_true_relations = 500;
  size_t num_documents = 900;
  size_t min_pair_sentences_per_doc = 4;
  size_t max_pair_sentences_per_doc = 12;
  /// Fraction of pair sentences expressing the relation (controls %pos).
  double positive_rate = 0.25;
  /// Probability a negative sentence reuses a truly-related pair (this is
  /// what makes raw distant supervision imprecise, Table 3).
  double negative_reuses_related_pair = 0.35;
  /// Probability a positive sentence uses a rare (LF-uncovered) cue.
  double rare_pos_rate = 0.12;
  /// Probability a positive sentence reverses entity order ("Y induced by X").
  double reversed_order_rate = 0.15;
  /// KB coverage/noise for the two primary (positive) subsets.
  double kb_coverage_a = 0.15;
  double kb_noise_a = 0.05;
  double kb_coverage_b = 0.15;
  double kb_noise_b = 0.40;
  size_t filler_vocab_size = 200;
  double train_fraction = 0.8;
  double dev_fraction = 0.1;
  uint64_t seed = 42;
  CueBank cues;
};

/// A fully materialized synthetic task: corpus, candidates, ground truth,
/// knowledge base, the task's labeling-function suite, baseline labels, and
/// splits. The analog of one row of Table 2.
struct RelationTask {
  std::string name;
  Corpus corpus;
  std::vector<Candidate> candidates;
  std::vector<Label> gold;
  /// Stable-address KB: labeling functions hold pointers into it.
  std::unique_ptr<KnowledgeBase> kb;
  LabelingFunctionSet lfs;
  /// Per-LF type tag, aligned with lfs: "pattern", "distant", "structure"
  /// (the Table 6 ablation groups).
  std::vector<std::string> lf_groups;
  /// The prior-heuristic baseline labels (distant supervision for CDR /
  /// Chem / Spouses, the legacy regex labeler for EHR), per candidate.
  std::vector<Label> ds_labels;
  /// Candidate indices of the train / dev / test splits.
  std::vector<size_t> train_idx;
  std::vector<size_t> dev_idx;
  std::vector<size_t> test_idx;

  /// Fraction of positive candidates (Table 2 "% Pos.").
  double PositiveFraction() const;
};

/// Generates a relation task from a spec (the engine behind the four task
/// factories below).
Result<RelationTask> GenerateRelationTask(const RelationTaskSpec& spec);

/// The four §4.1.1 task analogs, parameter-matched to Table 2's shape
/// (#LFs, %pos, relative scale). `scale` in (0, 1] shrinks document counts
/// for fast tests.
Result<RelationTask> MakeCdrTask(uint64_t seed = 42, double scale = 1.0);
Result<RelationTask> MakeSpousesTask(uint64_t seed = 42, double scale = 1.0);
Result<RelationTask> MakeEhrTask(uint64_t seed = 42, double scale = 1.0);
Result<RelationTask> MakeChemTask(uint64_t seed = 42, double scale = 1.0);

}  // namespace snorkel

#endif  // SNORKEL_SYNTH_RELATION_TASK_H_
