#include "synth/user_study.h"

#include <string>

#include "lf/declarative.h"
#include "util/random.h"

namespace snorkel {

Result<UserStudyPool> MakeUserStudyPool(const UserStudyOptions& options) {
  if (options.num_users == 0 ||
      options.min_lfs_per_user > options.max_lfs_per_user) {
    return Status::InvalidArgument("degenerate user-study sizes");
  }
  auto task = MakeSpousesTask(options.seed, options.corpus_scale);
  if (!task.ok()) return task.status();

  UserStudyPool pool;
  pool.task = std::move(task).value();
  Rng rng(options.seed + 1);

  // Idea banks users draw from. Good ideas mirror the real LF suite; users
  // frequently rediscover the same keywords (near-duplicates across users).
  const std::vector<std::vector<std::string>> kGoodKeywords = {
      {"married"}, {"wife"},   {"husband"}, {"wed"},
      {"spouse"},  {"married", "wed"}, {"honeymoon"}};
  const std::vector<std::vector<std::string>> kGoodNegKeywords = {
      {"brother"}, {"sister"}, {"colleague"}, {"coworker", "boss"}};
  const std::vector<std::vector<std::string>> kAmbiguousKeywords = {
      {"partner"}, {"dated"}, {"met"}, {"with"}};
  // Spurious ideas: generic filler words carry no relation signal.
  const std::vector<std::vector<std::string>> kSpuriousKeywords = {
      {"w3"}, {"w17"}, {"w42"}, {"w99"}, {"w123"}};

  auto pick = [&](const std::vector<std::vector<std::string>>& bank) {
    return bank[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(bank.size()) - 1))];
  };

  for (size_t u = 0; u < options.num_users; ++u) {
    size_t begin = pool.pool.size();
    size_t num_lfs = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(options.min_lfs_per_user),
                       static_cast<int64_t>(options.max_lfs_per_user)));
    for (size_t k = 0; k < num_lfs; ++k) {
      std::string name = "user" + std::to_string(u) + "_lf" +
                         std::to_string(k);
      double r = rng.Uniform();
      bool stem = rng.Bernoulli(0.7);  // Users vary raw vs stemmed matching.
      if (r < options.good_idea_rate) {
        if (rng.Bernoulli(0.7)) {
          pool.pool.Add(MakeKeywordBetweenLF(name, pick(kGoodKeywords), 1,
                                             stem));
        } else {
          pool.pool.Add(MakeKeywordBetweenLF(name, pick(kGoodNegKeywords), -1,
                                             stem));
        }
      } else if (r < options.good_idea_rate + options.ambiguous_idea_rate) {
        pool.pool.Add(MakeKeywordBetweenLF(name, pick(kAmbiguousKeywords),
                                           rng.Bernoulli(0.7) ? 1 : -1, stem));
      } else {
        pool.pool.Add(MakeKeywordBetweenLF(name, pick(kSpuriousKeywords),
                                           rng.Bernoulli(0.5) ? 1 : -1, stem));
      }
    }
    // Some users also wire up distant supervision.
    if (rng.Bernoulli(0.3)) {
      pool.pool.Add(MakeOntologyLF(
          "user" + std::to_string(u) + "_kb", pool.task.kb.get(), "PrimaryA",
          1, true));
      ++num_lfs;
    }
    pool.user_lf_ranges.push_back({begin, begin + num_lfs});
  }
  return pool;
}

}  // namespace snorkel
