#ifndef SNORKEL_DATA_CANDIDATE_H_
#define SNORKEL_DATA_CANDIDATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/context.h"
#include "util/status.h"

namespace snorkel {

/// A span of words inside one sentence of one document, carrying its entity
/// metadata — the leaf of the context hierarchy.
struct Span {
  uint32_t doc = 0;
  uint32_t sentence = 0;
  uint32_t word_start = 0;
  uint32_t word_end = 0;  // Half-open.
  std::string entity_type;
  std::string canonical_id;
};

/// A candidate relation mention: a tuple of two spans in the same sentence
/// (paper §2, Example 2.1 — e.g. Causes("magnesium", "quadriplegic")). The
/// classification task is to decide whether the relation holds for the pair.
struct Candidate {
  Span span1;
  Span span2;
};

/// A candidate bound to its corpus plus its index in the candidate set; the
/// object handed to labeling functions. Provides the ORM-style navigation of
/// the context hierarchy that the paper's LF interface exposes (x.chemical,
/// x.parent.words, word ranges, ...).
class CandidateView {
 public:
  CandidateView(const Corpus* corpus, const Candidate* candidate, size_t index)
      : corpus_(corpus), candidate_(candidate), index_(index) {}

  const Candidate& candidate() const { return *candidate_; }
  const Corpus& corpus() const { return *corpus_; }
  /// Index of this candidate within the candidate set (crowd-worker LFs key
  /// their stored votes on it).
  size_t index() const { return index_; }

  /// The sentence both spans live in.
  const Sentence& sentence() const;

  /// Words of span 1 / span 2, joined with spaces, lower-cased as stored.
  std::string Span1Text() const;
  std::string Span2Text() const;

  /// True when span1 starts before span2 in the sentence.
  bool Span1First() const;

  /// Tokens strictly between the two spans, in sentence order.
  std::vector<std::string> WordsBetween() const;

  /// The between-tokens joined with single spaces (for regex LFs).
  std::string TextBetween() const;

  /// Up to `k` tokens immediately left of the earlier span (sentence order).
  std::vector<std::string> WordsLeftOfFirst(size_t k) const;

  /// Up to `k` tokens immediately right of the later span.
  std::vector<std::string> WordsRightOfSecond(size_t k) const;

  /// Number of tokens strictly between the spans.
  size_t TokenDistance() const;

 private:
  static std::string JoinRange(const Sentence& sentence, size_t start,
                               size_t end);

  const Corpus* corpus_;
  const Candidate* candidate_;
  size_t index_;
};

/// Extracts candidates from a corpus: every co-occurring pair of mentions
/// with the requested entity types within a sentence (the paper's candidate
/// extraction for CDR, Spouses, etc.). For type1 == type2, each unordered
/// pair is emitted once with span1 the earlier mention.
class CandidateExtractor {
 public:
  CandidateExtractor(std::string entity_type1, std::string entity_type2);

  /// Scans the whole corpus.
  std::vector<Candidate> Extract(const Corpus& corpus) const;

 private:
  std::string type1_;
  std::string type2_;
};

}  // namespace snorkel

#endif  // SNORKEL_DATA_CANDIDATE_H_
