#include "data/knowledge_base.h"

namespace snorkel {

void KnowledgeBase::Add(const std::string& subset, const std::string& id1,
                        const std::string& id2) {
  auto it = subsets_.find(subset);
  if (it == subsets_.end()) {
    names_.push_back(subset);
    it = subsets_.emplace(subset, std::unordered_set<std::string>()).first;
  }
  it->second.insert(Key(id1, id2));
}

bool KnowledgeBase::Contains(const std::string& subset, const std::string& id1,
                             const std::string& id2) const {
  auto it = subsets_.find(subset);
  if (it == subsets_.end()) return false;
  return it->second.count(Key(id1, id2)) > 0;
}

KnowledgeBase::SubsetHandle KnowledgeBase::ResolveSubset(
    const std::string& subset) const {
  auto it = subsets_.find(subset);
  return it == subsets_.end() ? nullptr : &it->second;
}

bool KnowledgeBase::ContainsResolved(SubsetHandle subset,
                                     const std::string& id1,
                                     const std::string& id2) {
  if (subset == nullptr) return false;
  thread_local std::string key;
  key.assign(id1);
  key.push_back('\x1f');
  key.append(id2);
  return subset->count(key) > 0;
}

size_t KnowledgeBase::SubsetSize(const std::string& subset) const {
  auto it = subsets_.find(subset);
  return it == subsets_.end() ? 0 : it->second.size();
}

}  // namespace snorkel
