#include "data/candidate.h"

#include <algorithm>
#include <cassert>

namespace snorkel {

const Sentence& CandidateView::sentence() const {
  return corpus_->document(candidate_->span1.doc)
      .sentences[candidate_->span1.sentence];
}

std::string CandidateView::JoinRange(const Sentence& sentence, size_t start,
                                     size_t end) {
  return sentence.TextBetween(start, end);
}

std::string CandidateView::Span1Text() const {
  return JoinRange(sentence(), candidate_->span1.word_start,
                   candidate_->span1.word_end);
}

std::string CandidateView::Span2Text() const {
  return JoinRange(sentence(), candidate_->span2.word_start,
                   candidate_->span2.word_end);
}

bool CandidateView::Span1First() const {
  return candidate_->span1.word_start <= candidate_->span2.word_start;
}

std::vector<std::string> CandidateView::WordsBetween() const {
  const Sentence& s = sentence();
  const Span& first = Span1First() ? candidate_->span1 : candidate_->span2;
  const Span& second = Span1First() ? candidate_->span2 : candidate_->span1;
  std::vector<std::string> out;
  for (size_t i = first.word_end;
       i < second.word_start && i < s.words.size(); ++i) {
    out.push_back(s.words[i]);
  }
  return out;
}

std::string CandidateView::TextBetween() const {
  const Sentence& s = sentence();
  const Span& first = Span1First() ? candidate_->span1 : candidate_->span2;
  const Span& second = Span1First() ? candidate_->span2 : candidate_->span1;
  if (second.word_start <= first.word_end) return "";
  return JoinRange(s, first.word_end, second.word_start);
}

std::vector<std::string> CandidateView::WordsLeftOfFirst(size_t k) const {
  const Sentence& s = sentence();
  const Span& first = Span1First() ? candidate_->span1 : candidate_->span2;
  size_t start = first.word_start >= k ? first.word_start - k : 0;
  std::vector<std::string> out;
  for (size_t i = start; i < first.word_start; ++i) out.push_back(s.words[i]);
  return out;
}

std::vector<std::string> CandidateView::WordsRightOfSecond(size_t k) const {
  const Sentence& s = sentence();
  const Span& second = Span1First() ? candidate_->span2 : candidate_->span1;
  std::vector<std::string> out;
  for (size_t i = second.word_end; i < s.words.size() && out.size() < k; ++i) {
    out.push_back(s.words[i]);
  }
  return out;
}

size_t CandidateView::TokenDistance() const {
  const Span& first = Span1First() ? candidate_->span1 : candidate_->span2;
  const Span& second = Span1First() ? candidate_->span2 : candidate_->span1;
  if (second.word_start <= first.word_end) return 0;
  return second.word_start - first.word_end;
}

CandidateExtractor::CandidateExtractor(std::string entity_type1,
                                       std::string entity_type2)
    : type1_(std::move(entity_type1)), type2_(std::move(entity_type2)) {}

std::vector<Candidate> CandidateExtractor::Extract(const Corpus& corpus) const {
  std::vector<Candidate> candidates;
  for (size_t d = 0; d < corpus.num_documents(); ++d) {
    const Document& doc = corpus.document(d);
    for (size_t s = 0; s < doc.sentences.size(); ++s) {
      const Sentence& sentence = doc.sentences[s];
      for (size_t a = 0; a < sentence.mentions.size(); ++a) {
        const Mention& m1 = sentence.mentions[a];
        if (m1.entity_type != type1_) continue;
        // For same-type relations, only pair with later mentions to avoid
        // emitting both orders of the same unordered pair.
        size_t b_begin = type1_ == type2_ ? a + 1 : 0;
        for (size_t b = b_begin; b < sentence.mentions.size(); ++b) {
          if (b == a) continue;
          const Mention& m2 = sentence.mentions[b];
          if (m2.entity_type != type2_) continue;
          Candidate c;
          c.span1 = Span{static_cast<uint32_t>(d), static_cast<uint32_t>(s),
                         m1.word_start, m1.word_end, m1.entity_type,
                         m1.canonical_id};
          c.span2 = Span{static_cast<uint32_t>(d), static_cast<uint32_t>(s),
                         m2.word_start, m2.word_end, m2.entity_type,
                         m2.canonical_id};
          candidates.push_back(std::move(c));
        }
      }
    }
  }
  return candidates;
}

}  // namespace snorkel
