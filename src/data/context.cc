#include "data/context.h"

namespace snorkel {

std::string Sentence::Text() const { return TextBetween(0, words.size()); }

std::string Sentence::TextBetween(size_t start, size_t end) const {
  std::string out;
  for (size_t i = start; i < end && i < words.size(); ++i) {
    if (!out.empty()) out += ' ';
    out += words[i];
  }
  return out;
}

size_t Corpus::AddDocument(Document document) {
  documents_.push_back(std::move(document));
  return documents_.size() - 1;
}

size_t Corpus::NumSentences() const {
  size_t total = 0;
  for (const auto& doc : documents_) total += doc.sentences.size();
  return total;
}

size_t Corpus::NumMentions() const {
  size_t total = 0;
  for (const auto& doc : documents_) {
    for (const auto& sentence : doc.sentences) {
      total += sentence.mentions.size();
    }
  }
  return total;
}

Result<const Sentence*> Corpus::GetSentence(size_t doc, size_t sentence) const {
  if (doc >= documents_.size()) {
    return Status::NotFound("document index out of range");
  }
  if (sentence >= documents_[doc].sentences.size()) {
    return Status::NotFound("sentence index out of range");
  }
  return &documents_[doc].sentences[sentence];
}

}  // namespace snorkel
