#include "data/context.h"

#include <atomic>

namespace snorkel {

std::string Sentence::Text() const { return TextBetween(0, words.size()); }

std::string Sentence::TextBetween(size_t start, size_t end) const {
  std::string out;
  for (size_t i = start; i < end && i < words.size(); ++i) {
    if (!out.empty()) out += ' ';
    out += words[i];
  }
  return out;
}

namespace {

uint64_t NextCorpusIdentity() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Corpus::Corpus() : identity_(NextCorpusIdentity()) {}

Corpus::Corpus(const Corpus& other)
    : documents_(other.documents_), identity_(NextCorpusIdentity()) {}

Corpus& Corpus::operator=(const Corpus& other) {
  if (this != &other) {
    documents_ = other.documents_;
    identity_ = NextCorpusIdentity();
  }
  return *this;
}

Corpus::Corpus(Corpus&& other) noexcept
    : documents_(std::move(other.documents_)), identity_(other.identity_) {
  other.identity_ = NextCorpusIdentity();
}

Corpus& Corpus::operator=(Corpus&& other) noexcept {
  if (this != &other) {
    documents_ = std::move(other.documents_);
    identity_ = other.identity_;
    other.identity_ = NextCorpusIdentity();
  }
  return *this;
}

size_t Corpus::AddDocument(Document document) {
  identity_ = NextCorpusIdentity();
  documents_.push_back(std::move(document));
  return documents_.size() - 1;
}

Document* Corpus::mutable_document(size_t i) {
  identity_ = NextCorpusIdentity();
  return &documents_[i];
}

size_t Corpus::NumSentences() const {
  size_t total = 0;
  for (const auto& doc : documents_) total += doc.sentences.size();
  return total;
}

size_t Corpus::NumMentions() const {
  size_t total = 0;
  for (const auto& doc : documents_) {
    for (const auto& sentence : doc.sentences) {
      total += sentence.mentions.size();
    }
  }
  return total;
}

Result<const Sentence*> Corpus::GetSentence(size_t doc, size_t sentence) const {
  if (doc >= documents_.size()) {
    return Status::NotFound("document index out of range");
  }
  if (sentence >= documents_[doc].sentences.size()) {
    return Status::NotFound("sentence index out of range");
  }
  return &documents_[doc].sentences[sentence];
}

}  // namespace snorkel
