#ifndef SNORKEL_DATA_KNOWLEDGE_BASE_H_
#define SNORKEL_DATA_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace snorkel {

/// An external knowledge base of entity-pair relations, organized into named
/// subsets (e.g. CTD's "Causes" and "Treats" subsets, Example 2.4). Distant
/// supervision aligns candidates against these pairs; the Ontology LF
/// generator creates one labeling function per subset.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  /// Adds the pair (id1, id2) to `subset` (created on first use). Pairs are
  /// directional: (a, b) does not imply (b, a).
  void Add(const std::string& subset, const std::string& id1,
           const std::string& id2);

  /// True when (id1, id2) is in `subset`; false for unknown subsets.
  bool Contains(const std::string& subset, const std::string& id1,
                const std::string& id2) const;

  /// Resolved subset for repeated probes: skips the by-name map lookup that
  /// Contains() pays per call. nullptr for unknown subsets. Handles stay
  /// valid for the life of the KB (subsets are node-based; later Add()s
  /// don't move them) — but as with Contains, mutating the KB after LFs
  /// captured it is unsupported.
  using SubsetHandle = const std::unordered_set<std::string>*;
  SubsetHandle ResolveSubset(const std::string& subset) const;

  /// Contains() through a resolved handle, with a reused per-thread key
  /// buffer instead of a fresh allocation per probe.
  static bool ContainsResolved(SubsetHandle subset, const std::string& id1,
                               const std::string& id2);

  /// Number of pairs in `subset` (0 for unknown subsets).
  size_t SubsetSize(const std::string& subset) const;

  /// Names of all subsets, in insertion order.
  const std::vector<std::string>& subset_names() const { return names_; }

 private:
  static std::string Key(const std::string& id1, const std::string& id2) {
    return id1 + "\x1f" + id2;  // Unit separator: ids never contain it.
  }

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::unordered_set<std::string>> subsets_;
};

}  // namespace snorkel

#endif  // SNORKEL_DATA_KNOWLEDGE_BASE_H_
