#ifndef SNORKEL_DATA_CONTEXT_H_
#define SNORKEL_DATA_CONTEXT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace snorkel {

/// An entity-tagged span of words within a sentence (e.g. a chemical or a
/// person mention), produced by the NER tagger or supplied with the corpus.
/// Word indices are a half-open range [word_start, word_end).
struct Mention {
  uint32_t word_start = 0;
  uint32_t word_end = 0;
  /// Entity type, e.g. "chemical", "disease", "person", "anatomy".
  std::string entity_type;
  /// Canonical identifier used for distant-supervision lookups (KB key).
  std::string canonical_id;
};

/// One sentence: the ordered tokens plus any entity mentions. This is the
/// middle layer of the paper's context hierarchy (Figure 3): Document ->
/// Sentence -> Span, with Entity metadata attached to spans.
struct Sentence {
  std::vector<std::string> words;
  std::vector<Mention> mentions;

  /// Words joined with single spaces.
  std::string Text() const;

  /// Words in [start, end) joined with single spaces.
  std::string TextBetween(size_t start, size_t end) const;
};

/// One document: a named sequence of sentences.
struct Document {
  std::string name;
  std::vector<Sentence> sentences;
};

/// The root of the context hierarchy. The paper stores contexts in a
/// relational database behind an ORM; this is the in-memory equivalent: an
/// append-only document store with index-based navigation, sized for
/// single-node corpora (the paper's largest task is ~48k documents).
class Corpus {
 public:
  Corpus();
  Corpus(const Corpus& other);
  Corpus& operator=(const Corpus& other);
  Corpus(Corpus&& other) noexcept;
  Corpus& operator=(Corpus&& other) noexcept;

  /// Appends a document and returns its index.
  size_t AddDocument(Document document);

  size_t num_documents() const { return documents_.size(); }
  const Document& document(size_t i) const { return documents_[i]; }
  /// Mutable access for in-place preprocessing passes (NER tagging).
  Document* mutable_document(size_t i);

  /// Process-unique identity of this corpus's current contents: fresh at
  /// construction and on copy, carried along by move, and bumped by every
  /// mutable access (AddDocument / mutable_document). Caches keyed by
  /// identity therefore never serve stale or aliased text — a freed
  /// address can be reused by a different corpus, an identity cannot.
  uint64_t identity() const { return identity_; }

  /// Total number of sentences across all documents.
  size_t NumSentences() const;

  /// Total number of entity mentions across all documents.
  size_t NumMentions() const;

  /// Fetches a sentence; returns NotFound for out-of-range indices (the
  /// checked counterpart of document(i).sentences[j]).
  Result<const Sentence*> GetSentence(size_t doc, size_t sentence) const;

 private:
  std::vector<Document> documents_;
  uint64_t identity_;
};

}  // namespace snorkel

#endif  // SNORKEL_DATA_CONTEXT_H_
