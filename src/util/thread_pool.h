#ifndef SNORKEL_UTIL_THREAD_POOL_H_
#define SNORKEL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace snorkel {

/// Fixed-size worker pool. Labeling-function application is embarrassingly
/// parallel over candidates (paper, Appendix C "Execution Model"); this pool
/// is the single-node replacement for the paper's multiprocessing / Spark
/// layers.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 means hardware concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn`; the returned future resolves when it has run.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(i) for i in [begin, end) across the pool in contiguous chunks
  /// and blocks until every index has been processed.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace snorkel

#endif  // SNORKEL_UTIL_THREAD_POOL_H_
