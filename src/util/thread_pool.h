#ifndef SNORKEL_UTIL_THREAD_POOL_H_
#define SNORKEL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace snorkel {

/// Fixed-size worker pool. Labeling-function application is embarrassingly
/// parallel over candidates (paper, Appendix C "Execution Model"); this pool
/// is the single-node replacement for the paper's multiprocessing / Spark
/// layers. The modeling hot paths (GenerativeModel training/inference,
/// structure learning, Dawid-Skene EM) shard over it via ParallelForShards.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 means hardware concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn`; the returned future resolves when it has run.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(i) for i in [begin, end) across the pool in contiguous chunks
  /// and blocks until every index has been processed.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  /// Runs fn(shard, lo, hi) for contiguous shards of [begin, end), each at
  /// most `grain` indices, and blocks until all shards are done. Shard
  /// boundaries are a function of `grain` alone — NOT of the pool size — so
  /// per-shard partial results reduced in shard order are bitwise-identical
  /// for any number of worker threads. This is the primitive behind the
  /// deterministic parallel training loops. A single shard (or a
  /// single-worker pool) runs inline on the calling thread.
  void ParallelForShards(
      size_t begin, size_t end, size_t grain,
      const std::function<void(size_t shard, size_t lo, size_t hi)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

/// The process-wide worker pool (hardware concurrency), created on first
/// use. The core/ and serve/ hot paths share it instead of spawning
/// per-call pools, so one process keeps one set of workers regardless of
/// how many models train or serve concurrently.
ThreadPool& SharedThreadPool();

/// The threading convention shared by the LF appliers (lf/applier.h,
/// serve/incremental_applier.h): `num_threads` of 1 applies rows serially
/// inline, 0 routes through SharedThreadPool(), and n > 1 uses a dedicated
/// pool the applier owns for its LIFETIME (never built per call). The two
/// helpers below keep that convention in one place so the stateless and
/// cached appliers cannot diverge.

/// Returns the applier's dedicated pool under the convention: null unless
/// num_threads > 1.
std::unique_ptr<ThreadPool> MakeDedicatedPool(size_t num_threads);

/// Runs fn(i) for i in [begin, end): inline when serial was requested or
/// the range is below the sharding threshold (64 rows), else on
/// `dedicated` when non-null, else on the process-wide pool.
void ParallelApplyRows(ThreadPool* dedicated, size_t num_threads,
                       size_t begin, size_t end,
                       const std::function<void(size_t)>& fn);

/// Resolves the conventional `num_threads` knob used by the modeling
/// options structs, in one place: 0 = the process-wide SharedThreadPool();
/// n > 0 = a dedicated pool of n workers owned by this handle for its
/// lifetime (values below 1 are treated as 1).
class ScopedPool {
 public:
  explicit ScopedPool(int num_threads);

  ThreadPool& operator*() const { return *pool_; }
  ThreadPool* operator->() const { return pool_; }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_;
};

}  // namespace snorkel

#endif  // SNORKEL_UTIL_THREAD_POOL_H_
