#ifndef SNORKEL_UTIL_MMAP_FILE_H_
#define SNORKEL_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace snorkel {

/// A read-only view of a whole file, backed by mmap where the platform has
/// it and by a heap read-copy everywhere else. Mapping matters for the
/// serving tier: every LabelService replica in a process tree that opens the
/// same snapshot shares ONE page-cache copy of the weight payload, so
/// spinning up the Nth replica costs no additional physical memory for the
/// artifact bytes and cold-start is bounded by page faults, not a full-file
/// read+copy.
///
/// Movable, not copyable; the mapping (or buffer) is released on
/// destruction. `view()` stays valid for the lifetime of the object.
class MappedFile {
 public:
  /// Opens and maps `path` (NotFound / IOError on failure). On platforms
  /// without mmap — or if mapping fails — falls back to reading the file
  /// into an owned buffer; `is_mapped()` reports which path was taken.
  static Result<MappedFile> Open(const std::string& path);

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// The file's bytes; valid while this object is alive.
  std::string_view view() const {
    return map_base_ != nullptr
               ? std::string_view(static_cast<const char*>(map_base_),
                                  map_size_)
               : std::string_view(fallback_);
  }

  size_t size() const { return view().size(); }

  /// True when the bytes come from an mmap'd region (page-cache shared),
  /// false when the read-copy fallback was used.
  bool is_mapped() const { return map_base_ != nullptr; }

 private:
  MappedFile() = default;

  void* map_base_ = nullptr;  // Non-null iff mmap'd.
  size_t map_size_ = 0;
  std::string fallback_;      // Owned bytes on the read-copy path.
};

}  // namespace snorkel

#endif  // SNORKEL_UTIL_MMAP_FILE_H_
