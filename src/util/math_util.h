#ifndef SNORKEL_UTIL_MATH_UTIL_H_
#define SNORKEL_UTIL_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace snorkel {

/// Numerically stable logistic sigmoid 1 / (1 + e^-x).
double Sigmoid(double x);

/// log(e^a + e^b) computed without overflow.
double LogAddExp(double a, double b);

/// log(sum_i e^{v_i}) computed without overflow. `v` must be non-empty.
double LogSumExp(const std::vector<double>& v);

/// In-place softmax: v_i <- e^{v_i} / sum_j e^{v_j}, numerically stable.
void SoftmaxInPlace(std::vector<double>* v);

/// Natural-log odds of probability p, clipped away from {0, 1}.
double Logit(double p);

/// Clamps x into [lo, hi].
double Clip(double x, double lo, double hi);

/// Arithmetic mean; returns 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Unbiased sample variance; returns 0 for fewer than two elements.
double Variance(const std::vector<double>& v);

/// Dot product of equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// y <- y + alpha * x for equal-length vectors.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y);

/// L2 norm.
double Norm2(const std::vector<double>& v);

/// Soft-thresholding operator used by proximal (ISTA) updates for the
/// l1-regularized structure-learning objective:
///   sign(x) * max(|x| - t, 0).
double SoftThreshold(double x, double t);

/// True when |a - b| <= tol (absolute tolerance).
inline bool NearlyEqual(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

}  // namespace snorkel

#endif  // SNORKEL_UTIL_MATH_UTIL_H_
