#include "util/random.h"

#include <cassert>
#include <numeric>

namespace snorkel {

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double r = Uniform() * total;
  double cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (r < cum) return i;
  }
  return weights.size() - 1;  // Guard against floating-point round-off.
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  // Partial Fisher-Yates: only the first k positions need to be finalized.
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace snorkel
