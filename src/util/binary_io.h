#ifndef SNORKEL_UTIL_BINARY_IO_H_
#define SNORKEL_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace snorkel {

/// Append-only little-endian binary encoder for on-disk artifacts (model
/// snapshots). Fixed-width integers and IEEE-754 doubles only, so encodings
/// are byte-stable across platforms and runs — a snapshot written by one
/// build must load bit-identically in another.
class BinaryWriter {
 public:
  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteF64(double v) { AppendRaw(&v, sizeof(v)); }

  /// Length-prefixed (u64) byte string.
  void WriteString(std::string_view s) {
    WriteU64(s.size());
    buffer_.append(s.data(), s.size());
  }

  /// Length-prefixed vector of doubles.
  void WriteF64Vector(const std::vector<double>& v) {
    WriteU64(v.size());
    for (double x : v) WriteF64(x);
  }

  /// Length-prefixed vector of u64.
  void WriteU64Vector(const std::vector<uint64_t>& v) {
    WriteU64(v.size());
    for (uint64_t x : v) WriteU64(x);
  }

  /// Length-prefixed vector of length-prefixed strings.
  void WriteStringVector(const std::vector<std::string>& v) {
    WriteU64(v.size());
    for (const auto& s : v) WriteString(s);
  }

  const std::string& buffer() const { return buffer_; }
  std::string&& TakeBuffer() { return std::move(buffer_); }

 private:
  void AppendRaw(const void* data, size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  std::string buffer_;
};

/// Streaming decoder over a byte buffer. Reads never run past the end:
/// the first truncated read latches an IOError status and every subsequent
/// read returns zero values, so decoders can read a whole record and check
/// `status()` once at the end (corrupted input surfaces as an error, not UB).
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  uint32_t ReadU32() { return ReadScalar<uint32_t>(); }
  uint64_t ReadU64() { return ReadScalar<uint64_t>(); }
  int32_t ReadI32() { return ReadScalar<int32_t>(); }
  double ReadF64() { return ReadScalar<double>(); }

  std::string ReadString() {
    uint64_t size = ReadU64();
    if (!CheckAvailable(size)) return {};
    std::string out(data_.substr(pos_, size));
    pos_ += size;
    return out;
  }

  std::vector<double> ReadF64Vector() {
    uint64_t size = ReadU64();
    // Guard against corrupted lengths before allocating (division, not
    // multiplication: size * sizeof(T) could wrap for huge sizes).
    if (!CheckElements(size, sizeof(double))) return {};
    std::vector<double> out(size);
    for (auto& x : out) x = ReadF64();
    return out;
  }

  std::vector<uint64_t> ReadU64Vector() {
    uint64_t size = ReadU64();
    if (!CheckElements(size, sizeof(uint64_t))) return {};
    std::vector<uint64_t> out(size);
    for (auto& x : out) x = ReadU64();
    return out;
  }

  std::vector<std::string> ReadStringVector() {
    uint64_t size = ReadU64();
    // Each entry carries at least its u64 length prefix.
    if (!CheckElements(size, sizeof(uint64_t))) return {};
    std::vector<std::string> out;
    out.reserve(size);
    for (uint64_t i = 0; i < size; ++i) out.push_back(ReadString());
    return out;
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T ReadScalar() {
    if (!CheckAvailable(sizeof(T))) return T{};
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  bool CheckAvailable(uint64_t size) {
    if (!status_.ok()) return false;
    if (size > data_.size() - pos_) {
      status_ = Status::IOError("truncated binary payload");
      return false;
    }
    return true;
  }

  /// Overflow-safe form of CheckAvailable(count * elem_size).
  bool CheckElements(uint64_t count, size_t elem_size) {
    if (!status_.ok()) return false;
    if (count > (data_.size() - pos_) / elem_size) {
      status_ = Status::IOError("truncated binary payload");
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  Status status_;
};

/// Writes `data` to `path` atomically-ish (write then rename would need
/// dirfd sync; plain write suffices for single-writer snapshot stores).
Status WriteFileBytes(const std::string& path, std::string_view data);

/// Reads the whole file at `path` into `out`.
Result<std::string> ReadFileBytes(const std::string& path);

}  // namespace snorkel

#endif  // SNORKEL_UTIL_BINARY_IO_H_
