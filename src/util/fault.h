#ifndef SNORKEL_UTIL_FAULT_H_
#define SNORKEL_UTIL_FAULT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace snorkel {
namespace fault {

/// Deterministic fault-injection fabric: a process-wide registry of named
/// injection sites threaded through the I/O and admission paths
/// ("net.send", "net.recv", "queue.admit", "store.load", "server.label").
/// A site does NOTHING until armed with a seeded Schedule; the disarmed
/// check is one relaxed atomic load, so production paths pay a branch, not
/// a lock. Armed schedules are pure functions of (schedule, hit index,
/// seed): the same arming reproduces the same fault sequence in every run —
/// chaos tests assert exact behavior instead of hoping the race happens.
///
/// Injected FAILURES surface as whatever typed error the site's caller
/// returns for a real fault of that kind (a failed send is kUnavailable, a
/// rejected admission kResourceExhausted, ...), so an injected fault is
/// indistinguishable from a real one downstream — which is the point.
/// Injected DELAYS sleep inside Point() and then let the operation proceed
/// (latency spikes; results stay bit-identical).

/// Seeded schedule for one site.
struct Schedule {
  enum class Kind : uint32_t {
    /// Every `n`-th hit of the site faults (1-based: n=1 → every hit).
    kFailNth = 0,
    /// Each hit faults with `probability` (seeded, deterministic).
    kFailProbability = 1,
    /// Every `n`-th hit sleeps `delay_ms` (latency spike).
    kDelayNth = 2,
    /// Each hit sleeps `delay_ms` with `probability`.
    kDelayProbability = 3,
  };
  Kind kind = Kind::kFailNth;
  uint64_t n = 1;
  double probability = 0.0;
  uint64_t delay_ms = 0;
  uint64_t seed = 42;
  /// Auto-disarm the site after this many INJECTED faults/delays; 0 = keep
  /// going until Disarm().
  uint64_t max_hits = 0;
};

/// True while any site is armed (one relaxed atomic load — the cost of the
/// fabric when unused).
bool Armed();

/// The injection check: true when the site must FAIL this hit (the caller
/// returns its typed error); injected delays have already been slept by the
/// time it returns false. No-op (false) when the site is not armed.
bool Point(const char* site);

/// Arms `site` with `schedule` (replacing any previous schedule; hit
/// counters reset). InvalidArgument for malformed schedules.
Status Arm(const std::string& site, const Schedule& schedule);

/// Disarms one site; true when it was armed.
bool Disarm(const std::string& site);

void DisarmAll();

/// Process-wide count of injected faults + delays (the `faults_injected`
/// resilience counter).
uint64_t InjectedCount();

/// Injected faults + delays at one site (0 when never armed).
uint64_t SiteInjected(const std::string& site);

/// Parses "site=kind:params" specs (the CLI / wire surface):
///   net.send=fail-nth:3            every 3rd send fails
///   net.send=fail-prob:0.25:7      25% of sends fail, seed 7 (seed optional)
///   server.label=delay-nth:2:400   every 2nd label sleeps 400 ms
///   net.recv=delay-prob:0.1:50:7   10% of recvs sleep 50 ms, seed 7
Result<std::pair<std::string, Schedule>> ParseSpec(const std::string& spec);

/// Inverse of ParseSpec (diagnostics, tests).
std::string FormatSpec(const std::string& site, const Schedule& schedule);

}  // namespace fault
}  // namespace snorkel

#endif  // SNORKEL_UTIL_FAULT_H_
