#ifndef SNORKEL_UTIL_STRING_UTIL_H_
#define SNORKEL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace snorkel {

/// Splits `s` on the single character `sep`. Adjacent separators yield empty
/// pieces; an empty input yields one empty piece.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on runs of ASCII whitespace, discarding empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// True when `haystack` contains `needle`.
bool Contains(std::string_view haystack, std::string_view needle);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

}  // namespace snorkel

#endif  // SNORKEL_UTIL_STRING_UTIL_H_
