#ifndef SNORKEL_UTIL_BOUNDED_QUEUE_H_
#define SNORKEL_UTIL_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/fault.h"

namespace snorkel {

/// Admission configuration for the cost-aware mode of BoundedQueue. The
/// defaults reproduce the original count-only queue exactly; turning either
/// knob on adds overload control without changing the legacy API.
struct BoundedQueueOptions {
  /// Item-count capacity (clamped to >= 1), exactly as before.
  size_t capacity = 1;
  /// Budget of estimated cost units queued at once; 0 = no cost admission
  /// (count-only). Cost units are caller-defined (the shard server uses
  /// rows × LFs) and calibrated against wall clock via OnServiced().
  uint64_t cost_budget = 0;
  /// CoDel-style shedding target: a BULK item popped after sojourning more
  /// than 2× this many milliseconds is shed (handed back to the consumer to
  /// fail typed) instead of served — queued work whose useful life has
  /// drained must not starve fresher work. 0 disables shedding at pop.
  /// Interactive items are never shed here; their own deadlines bound them.
  uint64_t sojourn_target_ms = 0;
};

/// A bounded multi-producer / multi-consumer queue with explicit
/// backpressure — the admission primitive of the sharded serving tier
/// (shard/shard_router.h, net/shard_server.cc). Capacity is a hard bound:
/// producers either block until space frees up (`Push`) or get a typed
/// `kQueueFull` rejection (`TryPush`) so the caller can shed load instead of
/// queueing unboundedly.
///
/// On top of the count bound the queue optionally admits against a COST
/// budget with two priority lanes (BoundedQueueOptions): each costed item
/// carries an estimated cost, interactive items are served before bulk, and
/// when an interactive arrival finds the budget (or count) exhausted it
/// displaces queued BULK items — bulk shed first, never the reverse. Shed
/// items are returned to the caller (never silently dropped) so their
/// owners can fail them typed with a retry hint. An EWMA of observed
/// service time per cost unit (OnServiced) turns the queued cost into a
/// `retry_after` estimate for rejections.
///
/// Shutdown is two-phase: `Close()` refuses every subsequent push (and wakes
/// blocked producers with `kClosed`) while consumers keep draining whatever
/// was admitted; once the queue is empty, `Pop` returns nullopt and workers
/// exit. Nothing admitted is ever dropped without being handed back — the
/// clean-drain contract the router's shutdown path relies on.
template <typename T>
class BoundedQueue {
 public:
  enum class PushResult {
    kOk = 0,
    /// The queue is at capacity (TryPush only); the item was NOT consumed.
    kQueueFull,
    /// Close() was called; the item was NOT consumed.
    kClosed,
  };

  /// Priority lane of a costed item. Interactive (small, latency-sensitive)
  /// items are served first and shed last; bulk items absorb displacement.
  enum class Lane : uint8_t { kInteractive = 0, kBulk = 1 };

  /// `capacity` is clamped to at least 1 (count-only legacy mode).
  explicit BoundedQueue(size_t capacity)
      : BoundedQueue(BoundedQueueOptions{capacity, 0, 0}) {}

  explicit BoundedQueue(const BoundedQueueOptions& options)
      : options_(options) {
    if (options_.capacity == 0) options_.capacity = 1;
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full; moves from `item` only on kOk.
  /// Count-based legacy admission (interactive lane, zero cost).
  PushResult Push(T&& item) {
    std::unique_lock<std::mutex> lock(mu_);
    while (!closed_ && count() >= options_.capacity) {
      ++waiting_producers_;
      not_full_.wait(lock);
      --waiting_producers_;
    }
    if (closed_) return PushResult::kClosed;
    Enqueue(std::move(item), 0, Lane::kInteractive);
    return PushResult::kOk;
  }

  /// Non-blocking count-based admission; moves from `item` only on kOk.
  PushResult TryPush(T&& item) {
    // Injection site "queue.admit": an injected fault is a capacity
    // rejection — the same typed backpressure a genuinely full queue
    // produces (the item is NOT consumed).
    if (fault::Point("queue.admit")) return PushResult::kQueueFull;
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (count() >= options_.capacity) return PushResult::kQueueFull;
    Enqueue(std::move(item), 0, Lane::kInteractive);
    return PushResult::kOk;
  }

  /// Cost-aware non-blocking admission. Admits when both the count capacity
  /// and (when a budget is configured) the cost budget fit. An INTERACTIVE
  /// arrival that does not fit displaces queued BULK items oldest-first into
  /// `*shed` until it does (bulk shed first); a BULK arrival never displaces
  /// anything and is rejected kQueueFull instead. On kQueueFull/kClosed the
  /// item is NOT consumed and nothing was shed — displacement only happens
  /// when it actually makes room (no vain shedding).
  PushResult TryPush(T&& item, uint64_t cost, Lane lane,
                     std::vector<T>* shed) {
    if (fault::Point("queue.admit")) return PushResult::kQueueFull;
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    auto fits = [&] {
      if (count() >= options_.capacity) return false;
      if (options_.cost_budget > 0 && cost_used_ > 0 &&
          cost_used_ + cost > options_.cost_budget) {
        return false;
      }
      return true;
    };
    if (!fits()) {
      if (lane != Lane::kInteractive) return PushResult::kQueueFull;
      // Would displacing EVERY queued bulk item make room? If not, reject
      // without shedding work that cannot help (an arrival too large for
      // the budget must not vaporize the bulk lane for nothing).
      uint64_t bulk_cost = 0;
      for (const Slot& slot : lanes_[1]) bulk_cost += slot.cost;
      const uint64_t cost_without_bulk = cost_used_ - bulk_cost;
      const bool could_fit =
          lanes_[0].size() < options_.capacity &&
          !(options_.cost_budget > 0 && cost_without_bulk > 0 &&
            cost_without_bulk + cost > options_.cost_budget);
      if (!could_fit) return PushResult::kQueueFull;
      // Bulk-shed-first displacement: drop the oldest queued bulk work to
      // make room for interactive work, handing each victim back to the
      // caller to fail typed. Interactive never displaces interactive.
      while (!fits()) {
        Slot victim = std::move(lanes_[1].front());
        lanes_[1].pop_front();
        cost_used_ -= victim.cost;
        if (shed != nullptr) shed->push_back(std::move(victim.value));
        NotifyProducer();
      }
    }
    Enqueue(std::move(item), cost, lane);
    return PushResult::kOk;
  }

  /// Blocks until an item is available or the queue is closed AND drained
  /// (then returns nullopt — the consumer's exit signal). Interactive items
  /// are served before bulk.
  std::optional<T> Pop() { return Pop(nullptr); }

  /// Same, with CoDel-style shedding: a bulk item whose sojourn exceeded
  /// 2× the configured target when popped is appended to `*shed` (for the
  /// caller to fail typed) and the next item is popped instead. Items are
  /// never shed without being handed back.
  std::optional<T> Pop(std::vector<T>* shed) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      while (!closed_ && count() == 0) {
        ++waiting_consumers_;
        not_empty_.wait(lock);
        --waiting_consumers_;
      }
      if (count() == 0) return std::nullopt;
      Slot slot = Dequeue();
      if (shed != nullptr && ShouldShed(slot)) {
        shed->push_back(std::move(slot.value));
        continue;
      }
      return std::move(slot.value);
    }
  }

  /// Non-blocking pop; nullopt when currently empty (closed or not). The
  /// router's workers use this to coalesce a run of queued jobs into one
  /// fused model pass without ever waiting for more traffic.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count() == 0) return std::nullopt;
    Slot slot = Dequeue();
    return std::move(slot.value);
  }

  /// Refuses all future pushes; consumers drain the remaining items.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Instantaneous depth (a gauge; stale by the time the caller reads it).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count();
  }

  size_t capacity() const { return options_.capacity; }

  /// Cost units currently queued (0 in count-only use).
  uint64_t cost_used() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cost_used_;
  }

  /// Calibration feedback: a consumer finished an item of `cost` units in
  /// `elapsed_us` microseconds of service time. Folded into an EWMA of
  /// per-unit service time, which prices retry_after estimates.
  void OnServiced(uint64_t cost, uint64_t elapsed_us) {
    std::lock_guard<std::mutex> lock(mu_);
    double per_unit =
        static_cast<double>(elapsed_us) / static_cast<double>(cost == 0 ? 1 : cost);
    ewma_us_per_cost_ =
        ewma_us_per_cost_ == 0.0 ? per_unit
                                 : 0.8 * ewma_us_per_cost_ + 0.2 * per_unit;
  }

  /// How long a rejected producer should wait before retrying: the queued
  /// cost priced at the calibrated per-unit service time, divided by the
  /// consumer parallelism `divisor`. Always >= 1 ms so rejections can carry
  /// a non-zero hint even before the first calibration sample.
  uint64_t EstimateRetryAfterMs(uint64_t divisor = 1) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (divisor == 0) divisor = 1;
    // Before any calibration sample, price each queued cost unit (or, in
    // count-only use, each queued item) at 1 ms — deliberately conservative.
    double backlog = cost_used_ > 0 ? static_cast<double>(cost_used_)
                                    : static_cast<double>(count());
    double per_unit_us =
        ewma_us_per_cost_ > 0.0 ? ewma_us_per_cost_ : 1000.0;
    uint64_t ms = static_cast<uint64_t>(backlog * per_unit_us /
                                        (1000.0 * static_cast<double>(divisor)));
    return ms == 0 ? 1 : ms;
  }

 private:
  /// One queued item with its admission metadata.
  struct Slot {
    T value;
    uint64_t cost = 0;
    Lane lane = Lane::kInteractive;
    std::chrono::steady_clock::time_point enqueued;
  };

  // Callers hold mu_ for everything below.

  size_t count() const { return lanes_[0].size() + lanes_[1].size(); }

  void Enqueue(T&& item, uint64_t cost, Lane lane) {
    lanes_[static_cast<size_t>(lane)].push_back(
        Slot{std::move(item), cost, lane, std::chrono::steady_clock::now()});
    cost_used_ += cost;
    NotifyConsumer();
  }

  /// Pops the next item, interactive lane first (priority order).
  Slot Dequeue() {
    std::deque<Slot>& lane = lanes_[0].empty() ? lanes_[1] : lanes_[0];
    Slot slot = std::move(lane.front());
    lane.pop_front();
    cost_used_ -= slot.cost;
    NotifyProducer();
    return slot;
  }

  /// CoDel-style drop decision at dequeue: bulk work that sojourned past
  /// twice the target (one target of tolerance + one interval of
  /// persistence) is stale enough that serving it starves fresher work.
  /// Interactive work is never shed here — its own deadline bounds it.
  bool ShouldShed(const Slot& slot) const {
    if (options_.sojourn_target_ms == 0) return false;
    if (slot.lane != Lane::kBulk) return false;
    auto sojourn = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - slot.enqueued)
                       .count();
    return static_cast<uint64_t>(sojourn) >= 2 * options_.sojourn_target_ms;
  }

  /// Wake suppression (callers hold mu_): a busy consumer drains via
  /// TryPop without ever sleeping, so signalling every push would be a
  /// wasted futex syscall on the hot path. Only threads actually parked in
  /// wait() are counted, and only then is a signal issued.
  void NotifyConsumer() {
    if (waiting_consumers_ > 0) not_empty_.notify_one();
  }
  void NotifyProducer() {
    if (waiting_producers_ > 0) not_full_.notify_one();
  }

  BoundedQueueOptions options_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  /// lanes_[0] = interactive, lanes_[1] = bulk; served in that order.
  std::deque<Slot> lanes_[2];
  uint64_t cost_used_ = 0;
  double ewma_us_per_cost_ = 0.0;
  size_t waiting_consumers_ = 0;
  size_t waiting_producers_ = 0;
  bool closed_ = false;
};

}  // namespace snorkel

#endif  // SNORKEL_UTIL_BOUNDED_QUEUE_H_
