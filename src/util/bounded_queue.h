#ifndef SNORKEL_UTIL_BOUNDED_QUEUE_H_
#define SNORKEL_UTIL_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/fault.h"

namespace snorkel {

/// A bounded multi-producer / multi-consumer queue with explicit
/// backpressure — the admission primitive of the sharded serving tier
/// (shard/shard_router.h). Capacity is a hard bound: producers either block
/// until space frees up (`Push`) or get a typed `kQueueFull` rejection
/// (`TryPush`) so the caller can shed load instead of queueing unboundedly.
///
/// Shutdown is two-phase: `Close()` refuses every subsequent push (and wakes
/// blocked producers with `kClosed`) while consumers keep draining whatever
/// was admitted; once the queue is empty, `Pop` returns nullopt and workers
/// exit. Nothing admitted is ever dropped — the clean-drain contract the
/// router's shutdown path relies on.
template <typename T>
class BoundedQueue {
 public:
  enum class PushResult {
    kOk = 0,
    /// The queue is at capacity (TryPush only); the item was NOT consumed.
    kQueueFull,
    /// Close() was called; the item was NOT consumed.
    kClosed,
  };

  /// `capacity` is clamped to at least 1.
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full; moves from `item` only on kOk.
  PushResult Push(T&& item) {
    std::unique_lock<std::mutex> lock(mu_);
    while (!closed_ && items_.size() >= capacity_) {
      ++waiting_producers_;
      not_full_.wait(lock);
      --waiting_producers_;
    }
    if (closed_) return PushResult::kClosed;
    items_.push_back(std::move(item));
    NotifyConsumer();
    return PushResult::kOk;
  }

  /// Non-blocking admission; moves from `item` only on kOk.
  PushResult TryPush(T&& item) {
    // Injection site "queue.admit": an injected fault is a capacity
    // rejection — the same typed backpressure a genuinely full queue
    // produces (the item is NOT consumed).
    if (fault::Point("queue.admit")) return PushResult::kQueueFull;
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (items_.size() >= capacity_) return PushResult::kQueueFull;
    items_.push_back(std::move(item));
    NotifyConsumer();
    return PushResult::kOk;
  }

  /// Blocks until an item is available or the queue is closed AND drained
  /// (then returns nullopt — the consumer's exit signal).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!closed_ && items_.empty()) {
      ++waiting_consumers_;
      not_empty_.wait(lock);
      --waiting_consumers_;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    NotifyProducer();
    return item;
  }

  /// Non-blocking pop; nullopt when currently empty (closed or not). The
  /// router's workers use this to coalesce a run of queued jobs into one
  /// fused model pass without ever waiting for more traffic.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    NotifyProducer();
    return item;
  }

  /// Refuses all future pushes; consumers drain the remaining items.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Instantaneous depth (a gauge; stale by the time the caller reads it).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  /// Wake suppression (callers hold mu_): a busy consumer drains via
  /// TryPop without ever sleeping, so signalling every push would be a
  /// wasted futex syscall on the hot path. Only threads actually parked in
  /// wait() are counted, and only then is a signal issued.
  void NotifyConsumer() {
    if (waiting_consumers_ > 0) not_empty_.notify_one();
  }
  void NotifyProducer() {
    if (waiting_producers_ > 0) not_full_.notify_one();
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t waiting_consumers_ = 0;
  size_t waiting_producers_ = 0;
  bool closed_ = false;
};

}  // namespace snorkel

#endif  // SNORKEL_UTIL_BOUNDED_QUEUE_H_
