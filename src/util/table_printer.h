#ifndef SNORKEL_UTIL_TABLE_PRINTER_H_
#define SNORKEL_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace snorkel {

/// Renders aligned ASCII tables; the benchmark harness uses it to print the
/// same rows the paper's tables report.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (padded empty).
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` digits.
  static std::string Cell(double value, int precision = 1);
  static std::string Cell(int64_t value);

  /// Renders with a header rule, e.g.
  ///   Task    | P    | R    | F1
  ///   --------+------+------+-----
  ///   Chem    | 11.2 | 41.2 | 17.6
  std::string ToString() const;

  /// Writes ToString() to `os`.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace snorkel

#endif  // SNORKEL_UTIL_TABLE_PRINTER_H_
