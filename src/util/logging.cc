#include "util/logging.h"

#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>

namespace snorkel {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Kernel thread id, cached per thread (gettid() needs glibc >= 2.30, the
// raw syscall works everywhere).
long CurrentTid() {
  static thread_local long tid = syscall(SYS_gettid);
  return tid;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load());
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_min_level.load()), level_(level) {
  if (enabled_) {
    // Keep only the basename to avoid absolute build paths in logs.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    timespec ts;
    clock_gettime(CLOCK_REALTIME, &ts);
    struct tm tm_utc;
    gmtime_r(&ts.tv_sec, &tm_utc);
    char stamp[48];
    // [2026-08-08 12:34:56.789 INFO <tid> file.cc:42] msg
    std::snprintf(stamp, sizeof(stamp),
                  "%04d-%02d-%02d %02d:%02d:%02d.%03ld",
                  tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                  tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                  ts.tv_nsec / 1000000);
    stream_ << "[" << stamp << " " << LevelName(level_) << " <"
            << CurrentTid() << "> " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace internal
}  // namespace snorkel
