#ifndef SNORKEL_UTIL_HASH_H_
#define SNORKEL_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace snorkel {

/// 64-bit FNV-1a hash; stable across platforms and runs, which matters for
/// the feature-hashing vectorizer (hashed feature indices must be
/// reproducible between train and inference).
inline uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Combines two 64-bit hashes (boost::hash_combine-style mixing).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2);
  return a;
}

}  // namespace snorkel

#endif  // SNORKEL_UTIL_HASH_H_
