#ifndef SNORKEL_UTIL_STATUS_H_
#define SNORKEL_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace snorkel {

/// Machine-readable error categories, modeled on the RocksDB/Abseil idiom.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kAlreadyExists,
  kInternal,
  kIOError,
  /// A bounded resource (serving queue, admission budget) is at capacity;
  /// the caller should shed load or retry later. Backpressure rejections
  /// from the sharded serving tier carry this code.
  kResourceExhausted,
  /// The target cannot serve right now — a remote shard is unreachable,
  /// its connection broke mid-exchange, or the endpoint is marked unhealthy
  /// by the client's failure tracker. Retrying (another replica, or after
  /// the health cooldown) is reasonable; the request itself was fine.
  kUnavailable,
  /// The caller's deadline expired before the operation completed: connect,
  /// send, or receive timed out, or a request arrived at a server with its
  /// deadline already spent. The work may or may not have happened remotely.
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value used on all fallible library paths.
/// Library code does not throw; operations that can fail return a `Status`
/// (or a `Result<T>`, see below) which callers must inspect.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Accessing the value of an
/// errored result is a programming error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit so functions can `return value;` / `return status;` directly.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace snorkel

/// Propagates a non-OK Status to the caller.
#define SNORKEL_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::snorkel::Status status_macro_ = (expr);    \
    if (!status_macro_.ok()) return status_macro_; \
  } while (false)

#endif  // SNORKEL_UTIL_STATUS_H_
