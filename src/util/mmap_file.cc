#include "util/mmap_file.h"

#include "util/binary_io.h"

#if defined(__unix__) || defined(__APPLE__)
#define SNORKEL_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace snorkel {

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
#ifdef SNORKEL_HAVE_MMAP
    if (map_base_ != nullptr) ::munmap(map_base_, map_size_);
#endif
    map_base_ = other.map_base_;
    map_size_ = other.map_size_;
    fallback_ = std::move(other.fallback_);
    other.map_base_ = nullptr;
    other.map_size_ = 0;
    other.fallback_.clear();
  }
  return *this;
}

MappedFile::~MappedFile() {
#ifdef SNORKEL_HAVE_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, map_size_);
#endif
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
#ifdef SNORKEL_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat: " + path);
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap of length 0 is EINVAL; an empty file is an empty (owned) view.
    ::close(fd);
    MappedFile file;
    return file;
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping outlives the descriptor.
  if (base != MAP_FAILED) {
    MappedFile file;
    file.map_base_ = base;
    file.map_size_ = size;
    return file;
  }
  // Fall through to the read-copy path (e.g. a filesystem without mmap
  // support); same bytes, just not page-cache shared.
#endif
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  MappedFile file;
  file.fallback_ = std::move(*bytes);
  return file;
}

}  // namespace snorkel
