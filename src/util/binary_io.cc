#include "util/binary_io.h"

#include <cstdio>

namespace snorkel {

Status WriteFileBytes(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  bool flush_ok = std::fflush(f) == 0;
  std::fclose(f);
  if (written != data.size() || !flush_ok) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IOError("read error on " + path);
  }
  return out;
}

}  // namespace snorkel
