#ifndef SNORKEL_UTIL_TIMER_H_
#define SNORKEL_UTIL_TIMER_H_

#include <chrono>

namespace snorkel {

/// Simple wall-clock stopwatch for the pipeline-speed experiments (§3.1-3.2
/// report per-execution training-time savings).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace snorkel

#endif  // SNORKEL_UTIL_TIMER_H_
