#ifndef SNORKEL_UTIL_LOGGING_H_
#define SNORKEL_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace snorkel {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits to stderr on destruction when enabled.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace snorkel

#define SNORKEL_LOG(level)                                            \
  ::snorkel::internal::LogMessage(::snorkel::LogLevel::k##level, __FILE__, \
                                  __LINE__)

#endif  // SNORKEL_UTIL_LOGGING_H_
