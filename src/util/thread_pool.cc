#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace snorkel {

namespace {

/// Waits for EVERY future before rethrowing the first captured exception:
/// bailing on the first get() would unwind the caller's frame (and
/// everything the submitted closures capture) while other chunks still run.
void WaitAll(std::vector<std::future<void>>& futures) {
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  size_t total = end - begin;
  size_t chunks = std::min(total, workers_.size() * 4);
  size_t chunk_size = (total + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    size_t lo = begin + c * chunk_size;
    size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  WaitAll(futures);
}

void ThreadPool::ParallelForShards(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  size_t total = end - begin;
  size_t num_shards = (total + grain - 1) / grain;
  // Inline fast path: shard boundaries are identical either way, so results
  // match the pooled path bit for bit.
  if (num_shards == 1 || workers_.size() == 1) {
    for (size_t s = 0; s < num_shards; ++s) {
      size_t lo = begin + s * grain;
      size_t hi = std::min(end, lo + grain);
      fn(s, lo, hi);
    }
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    size_t lo = begin + s * grain;
    size_t hi = std::min(end, lo + grain);
    futures.push_back(Submit([s, lo, hi, &fn] { fn(s, lo, hi); }));
  }
  WaitAll(futures);
}

ThreadPool& SharedThreadPool() {
  static ThreadPool* pool = new ThreadPool(0);
  return *pool;
}

std::unique_ptr<ThreadPool> MakeDedicatedPool(size_t num_threads) {
  if (num_threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(num_threads);
}

void ParallelApplyRows(ThreadPool* dedicated, size_t num_threads,
                       size_t begin, size_t end,
                       const std::function<void(size_t)>& fn) {
  constexpr size_t kInlineRows = 64;
  if (num_threads == 1 || end - begin < kInlineRows) {
    for (size_t i = begin; i < end; ++i) fn(i);
  } else if (dedicated != nullptr) {
    dedicated->ParallelFor(begin, end, fn);
  } else {
    SharedThreadPool().ParallelFor(begin, end, fn);
  }
}

ScopedPool::ScopedPool(int num_threads) {
  if (num_threads == 0) {
    pool_ = &SharedThreadPool();
  } else {
    owned_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(std::max(1, num_threads)));
    pool_ = owned_.get();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace snorkel
