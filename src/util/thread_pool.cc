#include "util/thread_pool.h"

#include <algorithm>

namespace snorkel {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  size_t total = end - begin;
  size_t chunks = std::min(total, workers_.size() * 4);
  size_t chunk_size = (total + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    size_t lo = begin + c * chunk_size;
    size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (std::future<void>& f : futures) f.get();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace snorkel
