#ifndef SNORKEL_UTIL_ADAM_H_
#define SNORKEL_UTIL_ADAM_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace snorkel {

/// Hyper-parameters for AdamOptimizer.
struct AdamOptions {
  double learning_rate = 0.01;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// Adam optimizer state (Kingma & Ba, 2014) — the paper trains both the
/// generative and the discriminative models with Adam (§4.1).
///
/// Usage: call Step(params, grads) once per update; `grads` must be the
/// gradient of the *loss* (i.e. Step performs a descent step).
class AdamOptimizer {
 public:
  explicit AdamOptimizer(size_t dim, AdamOptions options = {})
      : options_(options), m_(dim, 0.0), v_(dim, 0.0) {}

  size_t dim() const { return m_.size(); }

  /// Applies one descent update: params <- params - lr * m̂ / (sqrt(v̂)+eps).
  void Step(std::vector<double>* params, const std::vector<double>& grads) {
    ++t_;
    double bc1 = 1.0 - std::pow(options_.beta1, t_);
    double bc2 = 1.0 - std::pow(options_.beta2, t_);
    for (size_t i = 0; i < m_.size(); ++i) {
      m_[i] = options_.beta1 * m_[i] + (1.0 - options_.beta1) * grads[i];
      v_[i] = options_.beta2 * v_[i] + (1.0 - options_.beta2) * grads[i] * grads[i];
      double mhat = m_[i] / bc1;
      double vhat = v_[i] / bc2;
      (*params)[i] -= options_.learning_rate * mhat / (std::sqrt(vhat) + options_.epsilon);
    }
  }

  void Reset() {
    t_ = 0;
    std::fill(m_.begin(), m_.end(), 0.0);
    std::fill(v_.begin(), v_.end(), 0.0);
  }

 private:
  AdamOptions options_;
  int64_t t_ = 0;
  std::vector<double> m_;
  std::vector<double> v_;
};

}  // namespace snorkel

#endif  // SNORKEL_UTIL_ADAM_H_
