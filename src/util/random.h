#ifndef SNORKEL_UTIL_RANDOM_H_
#define SNORKEL_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace snorkel {

/// Tiny, fast, splittable PRNG (SplitMix64). One independent stream per
/// Gibbs chain / worker shard costs 8 bytes of state and a few arithmetic
/// ops per draw, which keeps sampler hot loops free of the mt19937_64
/// state-array walk. Streams seeded from (seed, stream-index) pairs are
/// decorrelated by the finalizer, so parallel components stay deterministic
/// for a fixed seed regardless of thread count.
struct SplitMix64 {
  uint64_t state = 0;

  explicit SplitMix64(uint64_t seed) : state(seed) {}

  /// Creates the stream for component `index` of a seeded ensemble.
  SplitMix64(uint64_t seed, uint64_t index)
      : state(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1))) {}

  uint64_t Next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }
};

/// Seeded pseudo-random generator used throughout the library. Every
/// stochastic component (samplers, SGD shuffling, synthetic generators) takes
/// an explicit `Rng` or seed so that experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// True with probability `p`.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; useful for giving each worker
  /// thread or each synthetic entity its own deterministic stream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace snorkel

#endif  // SNORKEL_UTIL_RANDOM_H_
