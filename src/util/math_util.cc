#include "util/math_util.h"

#include <cassert>

namespace snorkel {

double Sigmoid(double x) {
  if (x >= 0) {
    double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  double z = std::exp(x);
  return z / (1.0 + z);
}

double LogAddExp(double a, double b) {
  double hi = std::max(a, b);
  double lo = std::min(a, b);
  if (std::isinf(hi) && hi < 0) return hi;  // log(0 + 0).
  return hi + std::log1p(std::exp(lo - hi));
}

double LogSumExp(const std::vector<double>& v) {
  assert(!v.empty());
  double hi = *std::max_element(v.begin(), v.end());
  if (std::isinf(hi) && hi < 0) return hi;
  double sum = 0.0;
  for (double x : v) sum += std::exp(x - hi);
  return hi + std::log(sum);
}

void SoftmaxInPlace(std::vector<double>* v) {
  assert(v != nullptr && !v->empty());
  double lse = LogSumExp(*v);
  for (double& x : *v) x = std::exp(x - lse);
}

double Logit(double p) {
  constexpr double kEps = 1e-12;
  p = Clip(p, kEps, 1.0 - kEps);
  return std::log(p / (1.0 - p));
}

double Clip(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double mu = Mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - mu) * (x - mu);
  return ss / static_cast<double>(v.size() - 1);
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  assert(y != nullptr && x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

double Norm2(const std::vector<double>& v) {
  return std::sqrt(Dot(v, v));
}

double SoftThreshold(double x, double t) {
  assert(t >= 0.0);
  if (x > t) return x - t;
  if (x < -t) return x + t;
  return 0.0;
}

}  // namespace snorkel
