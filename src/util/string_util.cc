#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace snorkel {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return std::string(s.substr(begin, end - begin));
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

}  // namespace snorkel
