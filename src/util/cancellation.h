#ifndef SNORKEL_UTIL_CANCELLATION_H_
#define SNORKEL_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>

namespace snorkel {

/// Cooperative cancellation token: an absolute steady-clock deadline plus a
/// latched cancelled flag, checked at chunk boundaries by long-running
/// compute (LF application row shards, column claims) so work whose caller
/// has already given up stops consuming CPU mid-flight instead of running to
/// completion into a reply nobody reads.
///
/// The check is designed for hot loops: once any thread observes expiry the
/// flag latches, so sibling threads of the same parallel apply bail on a
/// relaxed atomic load without ever reading the clock again. Expired() is
/// const (callable through the `const CancelToken*` a request carries);
/// the latch is mutable for exactly that reason.
///
/// A token is immovable (it holds an atomic); owners keep it on the stack or
/// in the job object for the duration of the request and hand out a pointer.
class CancelToken {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// A token that never expires on its own (Cancel() still works).
  CancelToken() = default;

  /// Expires once the steady clock passes `deadline`; TimePoint::max() never
  /// expires.
  explicit CancelToken(TimePoint deadline) : deadline_(deadline) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Manual cancellation (latches; independent of the deadline).
  void Cancel() const { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once the deadline has passed or Cancel() was called. Cheap after
  /// the first observation: the latch short-circuits the clock read.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (deadline_ == TimePoint::max()) return false;
    if (std::chrono::steady_clock::now() <= deadline_) return false;
    cancelled_.store(true, std::memory_order_relaxed);
    return true;
  }

  TimePoint deadline() const { return deadline_; }

 private:
  TimePoint deadline_ = TimePoint::max();
  /// Latched expiry/cancel flag; mutable so the const hot-loop check can
  /// publish the observation for sibling threads.
  mutable std::atomic<bool> cancelled_{false};
};

}  // namespace snorkel

#endif  // SNORKEL_UTIL_CANCELLATION_H_
