#include "util/fault.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/random.h"

namespace snorkel {
namespace fault {

namespace {

struct Site {
  Schedule schedule;
  uint64_t hits = 0;      // Times the site was evaluated while armed.
  uint64_t injected = 0;  // Faults + delays actually injected.
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Site> sites;
  /// Injected counts survive Disarm (stats outlive the schedule).
  std::unordered_map<std::string, uint64_t> retired_injected;
};

/// Leaked singletons: injection sites are called from detached threads that
/// may outlive static destruction order.
Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

std::atomic<uint64_t>& ArmedCount() {
  static std::atomic<uint64_t>* count = new std::atomic<uint64_t>(0);
  return *count;
}

std::atomic<uint64_t>& TotalInjected() {
  static std::atomic<uint64_t>* count = new std::atomic<uint64_t>(0);
  return *count;
}

Status Validate(const Schedule& schedule) {
  switch (schedule.kind) {
    case Schedule::Kind::kFailNth:
    case Schedule::Kind::kDelayNth:
      if (schedule.n == 0) {
        return Status::InvalidArgument("fault schedule: n must be >= 1");
      }
      break;
    case Schedule::Kind::kFailProbability:
    case Schedule::Kind::kDelayProbability:
      if (schedule.probability < 0.0 || schedule.probability > 1.0) {
        return Status::InvalidArgument(
            "fault schedule: probability must be in [0, 1]");
      }
      break;
    default:
      return Status::InvalidArgument("fault schedule: unknown kind " +
                                     std::to_string(static_cast<uint32_t>(
                                         schedule.kind)));
  }
  return Status::OK();
}

}  // namespace

bool Armed() {
  return ArmedCount().load(std::memory_order_relaxed) > 0;
}

bool Point(const char* site) {
  if (!Armed()) return false;
  uint64_t delay_ms = 0;
  bool fail = false;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.sites.find(site);
    if (it == registry.sites.end()) return false;
    Site& entry = it->second;
    const Schedule& schedule = entry.schedule;
    uint64_t hit = ++entry.hits;  // 1-based.
    bool trigger = false;
    switch (schedule.kind) {
      case Schedule::Kind::kFailNth:
      case Schedule::Kind::kDelayNth:
        trigger = hit % schedule.n == 0;
        break;
      case Schedule::Kind::kFailProbability:
      case Schedule::Kind::kDelayProbability: {
        // Per-hit deterministic draw: the k-th evaluation of a site draws
        // the same value in every run with the same seed.
        SplitMix64 rng(schedule.seed, hit);
        trigger = rng.Uniform() < schedule.probability;
        break;
      }
    }
    if (trigger) {
      ++entry.injected;
      TotalInjected().fetch_add(1, std::memory_order_relaxed);
      if (schedule.kind == Schedule::Kind::kFailNth ||
          schedule.kind == Schedule::Kind::kFailProbability) {
        fail = true;
      } else {
        delay_ms = schedule.delay_ms;
      }
      if (schedule.max_hits > 0 && entry.injected >= schedule.max_hits) {
        registry.retired_injected[site] += entry.injected;
        registry.sites.erase(it);
        ArmedCount().fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return fail;
}

Status Arm(const std::string& site, const Schedule& schedule) {
  if (site.empty()) {
    return Status::InvalidArgument("fault site name must be non-empty");
  }
  SNORKEL_RETURN_IF_ERROR(Validate(schedule));
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  if (it != registry.sites.end()) {
    registry.retired_injected[site] += it->second.injected;
    it->second = Site{schedule, 0, 0};
  } else {
    registry.sites.emplace(site, Site{schedule, 0, 0});
    ArmedCount().fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

bool Disarm(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(site);
  if (it == registry.sites.end()) return false;
  registry.retired_injected[site] += it->second.injected;
  registry.sites.erase(it);
  ArmedCount().fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& [site, entry] : registry.sites) {
    registry.retired_injected[site] += entry.injected;
  }
  ArmedCount().fetch_sub(registry.sites.size(), std::memory_order_relaxed);
  registry.sites.clear();
}

uint64_t InjectedCount() {
  return TotalInjected().load(std::memory_order_relaxed);
}

uint64_t SiteInjected(const std::string& site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  uint64_t count = 0;
  auto retired = registry.retired_injected.find(site);
  if (retired != registry.retired_injected.end()) count = retired->second;
  auto live = registry.sites.find(site);
  if (live != registry.sites.end()) count += live->second.injected;
  return count;
}

Result<std::pair<std::string, Schedule>> ParseSpec(const std::string& spec) {
  size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("fault spec '" + spec +
                                   "' is not site=kind:params");
  }
  std::string site = spec.substr(0, eq);
  std::vector<std::string> parts;
  for (size_t begin = eq + 1; begin <= spec.size();) {
    size_t colon = spec.find(':', begin);
    if (colon == std::string::npos) colon = spec.size();
    parts.push_back(spec.substr(begin, colon - begin));
    begin = colon + 1;
  }
  if (parts.empty() || parts[0].empty()) {
    return Status::InvalidArgument("fault spec '" + spec +
                                   "' is missing its kind");
  }
  auto u64_at = [&](size_t i, uint64_t fallback) -> uint64_t {
    return i < parts.size() ? std::strtoull(parts[i].c_str(), nullptr, 10)
                            : fallback;
  };
  auto f64_at = [&](size_t i) -> double {
    return i < parts.size() ? std::strtod(parts[i].c_str(), nullptr) : 0.0;
  };
  Schedule schedule;
  const std::string& kind = parts[0];
  if (kind == "fail-nth") {
    schedule.kind = Schedule::Kind::kFailNth;
    schedule.n = u64_at(1, 0);
  } else if (kind == "fail-prob") {
    schedule.kind = Schedule::Kind::kFailProbability;
    schedule.probability = f64_at(1);
    schedule.seed = u64_at(2, schedule.seed);
  } else if (kind == "delay-nth") {
    schedule.kind = Schedule::Kind::kDelayNth;
    schedule.n = u64_at(1, 0);
    schedule.delay_ms = u64_at(2, 0);
  } else if (kind == "delay-prob") {
    schedule.kind = Schedule::Kind::kDelayProbability;
    schedule.probability = f64_at(1);
    schedule.delay_ms = u64_at(2, 0);
    schedule.seed = u64_at(3, schedule.seed);
  } else {
    return Status::InvalidArgument(
        "fault spec '" + spec + "': unknown kind '" + kind +
        "' (fail-nth | fail-prob | delay-nth | delay-prob)");
  }
  SNORKEL_RETURN_IF_ERROR(Validate(schedule));
  return std::make_pair(std::move(site), schedule);
}

std::string FormatSpec(const std::string& site, const Schedule& schedule) {
  std::string out = site + "=";
  switch (schedule.kind) {
    case Schedule::Kind::kFailNth:
      out += "fail-nth:" + std::to_string(schedule.n);
      break;
    case Schedule::Kind::kFailProbability:
      out += "fail-prob:" + std::to_string(schedule.probability) + ":" +
             std::to_string(schedule.seed);
      break;
    case Schedule::Kind::kDelayNth:
      out += "delay-nth:" + std::to_string(schedule.n) + ":" +
             std::to_string(schedule.delay_ms);
      break;
    case Schedule::Kind::kDelayProbability:
      out += "delay-prob:" + std::to_string(schedule.probability) + ":" +
             std::to_string(schedule.delay_ms) + ":" +
             std::to_string(schedule.seed);
      break;
  }
  return out;
}

}  // namespace fault
}  // namespace snorkel
