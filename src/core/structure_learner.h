#ifndef SNORKEL_CORE_STRUCTURE_LEARNER_H_
#define SNORKEL_CORE_STRUCTURE_LEARNER_H_

#include <vector>

#include "core/label_matrix.h"
#include "core/types.h"
#include "util/status.h"

namespace snorkel {

/// Hyper-parameters for StructureLearner.
struct StructureLearnerOptions {
  /// The selection threshold ε (§3.2): both the ℓ1 regularization
  /// coefficient and the minimum absolute correlation weight a dependency
  /// must reach to be selected.
  double epsilon = 0.1;
  /// Full-batch proximal-gradient epochs per labeling function.
  int epochs = 40;
  /// Epochs per ε step during a warm-started Sweep().
  int sweep_epochs = 15;
  /// Proximal-gradient step size.
  double learning_rate = 0.5;
  /// Mean accuracy weight w̄ for the pilot posterior over the latent label
  /// (same default as the optimizer's footnote-8 prior).
  double mean_acc_weight = 1.0;
  /// Structure learning subsamples rows beyond this cap; the estimator is a
  /// per-LF regression, so a few thousand rows suffice (the paper reports
  /// 15 s for 100 LFs x 10k points vs 45 min for full MLE).
  size_t max_rows = 8000;
  /// Worker threads for the per-LF conditional fits, which are independent
  /// regressions and run concurrently: 0 uses the process-wide
  /// SharedThreadPool. Each LF's conditional touches only its own slice of
  /// the optimization state, so results are identical for any value.
  int num_threads = 0;
  uint64_t seed = 42;
};

/// One point of an ε sweep: the threshold and how many correlations it
/// selects (the dashed lines of Figure 5).
struct StructureSweepPoint {
  double epsilon = 0.0;
  size_t num_correlations = 0;
};

/// Learns which labeling-function pairs to model as correlated, from the
/// label matrix alone (no ground truth), following the pseudolikelihood
/// approach of Bach et al. [5] as used in paper §3.2.
///
/// For each LF j we model the conditional p(Λ_j | Λ_{\j}) with the latent
/// label marginalized exactly:
///   p(λ | Λ_{\j}) = Σ_y π(y | Λ_{\j}) q_j(λ | y, Λ_{\j}),
///   q_j(λ | y, ·) ∝ exp(θ_lab 1{λ≠∅} + θ_acc 1{λ=y} + Σ_{k≠j} θ_k 1{λ=Λ_k}),
/// where π is a pilot posterior using mean accuracy weight w̄. The ℓ1
/// penalty ε on the θ_k is applied with proximal (ISTA) updates; gradients
/// are exact (no sampling). A pair (j,k) is selected when either direction's
/// learned weight reaches ε in absolute value.
class StructureLearner {
 public:
  explicit StructureLearner(StructureLearnerOptions options = {});

  /// Learns the correlation set C at options().epsilon.
  Result<std::vector<CorrelationPair>> LearnStructure(
      const LabelMatrix& matrix) const;

  /// Learns the correlation set C at the given ε.
  Result<std::vector<CorrelationPair>> LearnStructure(const LabelMatrix& matrix,
                                                      double epsilon) const;

  /// Runs the ε search over `epsilons` (any order; processed from largest to
  /// smallest with warm starts, which matches the paper's early-termination
  /// trick) and returns one sweep point per ε, ordered by descending ε.
  Result<std::vector<StructureSweepPoint>> Sweep(
      const LabelMatrix& matrix, const std::vector<double>& epsilons) const;

  /// Picks the elbow index of a sweep ordered by descending ε: the point of
  /// greatest absolute difference from its neighbors (discrete curvature of
  /// the correlation-count curve), per §3.2.2. Returns 0 for sweeps with
  /// fewer than three points.
  static size_t SelectElbowIndex(const std::vector<StructureSweepPoint>& sweep);

  const StructureLearnerOptions& options() const { return options_; }

 private:
  StructureLearnerOptions options_;
};

}  // namespace snorkel

#endif  // SNORKEL_CORE_STRUCTURE_LEARNER_H_
