#ifndef SNORKEL_CORE_GENERATIVE_MODEL_H_
#define SNORKEL_CORE_GENERATIVE_MODEL_H_

#include <vector>

#include "core/label_matrix.h"
#include "core/types.h"
#include "util/status.h"

namespace snorkel {

/// Hyper-parameters for GenerativeModel. The defaults are tuned so that the
/// synthetic and pipeline experiments converge in a few hundred full-batch
/// steps; all stochastic behaviour is controlled by `seed`.
struct GenerativeModelOptions {
  /// Full-batch gradient steps.
  int epochs = 250;
  /// Adam step size.
  double learning_rate = 0.05;
  /// L2 pull of each weight toward its prior mean (accuracy weights are
  /// regularized toward their init; propensity and correlation weights
  /// toward 0). Acts as the prior that LFs are better than random.
  double l2 = 0.002;
  /// Prior mean for accuracy weights; 1.0 corresponds to ~73% accuracy
  /// under alpha = sigmoid(w) (paper footnote 8).
  double acc_prior_weight = 1.0;
  /// Scale each LF's initial accuracy weight (and its L2 prior mean) by
  /// 1 / (1 + correlation degree). A block of d mutually correlated LFs then
  /// starts with the posterior influence of roughly one LF instead of d,
  /// which places training in the basin where correlation factors — not
  /// inflated accuracies — explain the block's agreement (the Example 3.1
  /// double-counting pathology is a local optimum of the marginal
  /// likelihood otherwise).
  bool degree_scaled_init = true;
  /// When false, labeling-propensity weights w^Lab stay at their init; this
  /// breaks marginal-likelihood calibration and exists only for ablations.
  bool learn_propensity = true;
  /// Number of persistent Gibbs chains estimating the model expectation
  /// (negative phase) when correlations are modeled.
  int num_chains = 32;
  /// Gibbs sweeps per chain per epoch.
  int gibbs_sweeps = 2;
  /// Extra sweeps before the first epoch.
  int burn_in_sweeps = 20;
  /// Clamp for all weights, for numerical robustness.
  double weight_clamp = 6.0;
  /// Tighter clamp for the accuracy weights (|w^Acc_j| <= cap, i.e. LF
  /// accuracy estimates in [σ(-cap), σ(cap)]). This is strong shrinkage: it
  /// bounds how much aggregate posterior mass any *block* of redundant LFs
  /// can grab, which keeps the misspecified independent model from spiraling
  /// into its flipped mode when users write heavily-correlated LFs (the
  /// §3.2 motivation). 2.5 bounds estimates to roughly [8%, 92%].
  double acc_weight_cap = 2.5;
  /// When false (default), accuracy weights are floored at 0 — the paper's
  /// non-adversarial assumption (Proposition 1 assumes w*_j > 0 for all j).
  /// Below-chance sources are then *ignored* rather than *inverted*, which
  /// removes the label-flipped mode of the marginal likelihood entirely.
  /// Set true to let the model learn negative accuracy weights.
  bool allow_adversarial = false;
  /// EM iterations on the conditional (Dawid-Skene-style) model used to
  /// warm-start the marginal-likelihood SGD in the correct basin. 0 gives a
  /// cold start (ablation only — cold starts are unstable on unbalanced,
  /// low-coverage matrices).
  int em_warm_start_iters = 25;
  /// Prior probability of the positive class, applied at prediction time as
  /// a log-odds shift (the factor graph itself is class-symmetric, as in the
  /// paper).
  double class_balance = 0.5;
  /// Force Gibbs-based training even with no correlations; used by the
  /// exact-vs-sampled ablation (the exact path is available because the
  /// independent model's partition function factorizes, Appendix A.1).
  bool force_gibbs = false;
  /// Worker threads for the sharded training / inference loops: 0 uses the
  /// process-wide SharedThreadPool, any other value spins up a dedicated
  /// pool of that size. Shard boundaries and per-chain RNG streams are
  /// functions of the data and `seed` alone, so fitted weights and
  /// posteriors are bitwise-identical for every value of this knob.
  int num_threads = 0;
  uint64_t seed = 42;
};

/// The generative label model p_w(Λ, Y) of paper §2.2: a factor graph over
/// the label matrix Λ and the latent true labels Y with three factor types,
///
///   φ^Lab_{ij}  = 1{Λ_ij != ∅}            (labeling propensity)
///   φ^Acc_{ij}  = 1{Λ_ij = y_i}           (accuracy)
///   φ^Corr_{ijk} = 1{Λ_ij = Λ_ik}, (j,k) ∈ C   (pairwise correlation)
///
/// trained by maximizing the marginal likelihood log Σ_Y p_w(Λ, Y) with *no
/// ground-truth labels*. Because no factor couples distinct data points, the
/// model expectation is over a single generic point, and:
///
///  * with C = ∅ the per-point partition function factorizes over LFs, so
///    gradients are computed exactly (closed form, no sampling);
///  * with C != ∅ the model expectation is estimated with persistent Gibbs
///    chains (contrastive-divergence-style SGD, replacing the paper's
///    Numbskull sampler).
///
/// Predictions are the posteriors p_w(y | Λ_i), used downstream as
/// probabilistic training labels Ỹ.
class GenerativeModel {
 public:
  explicit GenerativeModel(GenerativeModelOptions options = {});

  /// Fits weights to a binary label matrix. `correlations` is the set C of
  /// LF pairs to model (normalized to j < k; duplicates rejected).
  Status Fit(const LabelMatrix& matrix,
             const std::vector<CorrelationPair>& correlations = {});

  bool is_fit() const { return is_fit_; }

  /// Restores a fitted model from serialized weights (the snapshot-store
  /// hook, serve/snapshot.h): validates shapes, requires the correlation
  /// set in Fit's normalized form (j < k, sorted, duplicate-free), and
  /// marks the model fit. Posteriors computed after a restore are
  /// bitwise-identical to the model that produced the weights.
  Status RestoreWeights(size_t num_lfs, std::vector<double> acc_weights,
                        std::vector<double> lab_weights,
                        std::vector<double> corr_weights,
                        std::vector<CorrelationPair> correlations);

  /// Number of labeling functions the model was fit (or restored) over.
  size_t num_lfs() const { return num_lfs_; }

  /// The class-balance prior applied at prediction time.
  double class_balance() const { return options_.class_balance; }

  /// Posterior p(y = +1 | Λ_i) for every row. With `apply_class_balance`
  /// (default) the class-balance prior enters as a log-odds shift and rows
  /// with no votes get the prior; without it the posterior is the paper's
  /// class-symmetric σ(f_w(Λ_i)), the form used as discriminative training
  /// targets (uncovered rows are then a neutral 0.5).
  std::vector<double> PredictProba(const LabelMatrix& matrix,
                                   bool apply_class_balance = true) const;

  /// Hard labels: +1 if p > 0.5, -1 if p < 0.5, 0 (abstain) at exactly 0.5.
  std::vector<Label> PredictLabels(const LabelMatrix& matrix) const;

  /// Learned accuracy weights w^Acc (log-odds scale).
  const std::vector<double>& accuracy_weights() const { return acc_weights_; }
  /// Learned propensity weights w^Lab.
  const std::vector<double>& propensity_weights() const { return lab_weights_; }
  /// Learned correlation weights, aligned with correlations().
  const std::vector<double>& correlation_weights() const {
    return corr_weights_;
  }
  const std::vector<CorrelationPair>& correlations() const {
    return correlations_;
  }

  /// Estimated LF accuracies alpha_j = sigmoid(w^Acc_j): the probability a
  /// non-abstaining vote agrees with the true label.
  std::vector<double> EstimatedAccuracies() const;

  /// Mean per-row log marginal likelihood log p_w(Λ_i) under the
  /// *independent* part of the model. Exact for C = ∅; returns
  /// FailedPrecondition when correlations are modeled (the partition
  /// function no longer factorizes).
  Result<double> LogMarginalLikelihood(const LabelMatrix& matrix) const;

 private:
  GenerativeModelOptions options_;
  bool is_fit_ = false;
  size_t num_lfs_ = 0;
  std::vector<double> acc_weights_;
  std::vector<double> lab_weights_;
  std::vector<double> corr_weights_;
  std::vector<CorrelationPair> correlations_;
};

}  // namespace snorkel

#endif  // SNORKEL_CORE_GENERATIVE_MODEL_H_
