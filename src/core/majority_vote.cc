#include "core/majority_vote.h"

#include <cassert>

#include "util/thread_pool.h"

namespace snorkel {

namespace {

/// Rows per shard when fanning row loops out over the shared pool; a
/// constant, so output is identical for any pool size (rows are written
/// disjointly). Matrices smaller than one shard run inline.
constexpr size_t kRowGrain = 4096;

Label SignOrZero(double v) {
  if (v > 0) return 1;
  if (v < 0) return -1;
  return kAbstain;
}

}  // namespace

double UnweightedVote(LabelMatrix::RowSpan row) {
  double sum = 0.0;
  for (const auto& e : row) sum += static_cast<double>(e.label);
  return sum;
}

double WeightedVote(LabelMatrix::RowSpan row,
                    const std::vector<double>& weights) {
  double sum = 0.0;
  for (const auto& e : row) {
    assert(e.lf < weights.size());
    sum += weights[e.lf] * static_cast<double>(e.label);
  }
  return sum;
}

std::vector<Label> MajorityVotePredictions(const LabelMatrix& matrix) {
  std::vector<Label> out(matrix.num_rows(), kAbstain);
  SharedThreadPool().ParallelForShards(
      0, matrix.num_rows(), kRowGrain, [&](size_t, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          out[i] = SignOrZero(UnweightedVote(matrix.row(i)));
        }
      });
  return out;
}

std::vector<Label> WeightedMajorityVotePredictions(
    const LabelMatrix& matrix, const std::vector<double>& weights) {
  assert(weights.size() == matrix.num_lfs());
  std::vector<Label> out(matrix.num_rows(), kAbstain);
  SharedThreadPool().ParallelForShards(
      0, matrix.num_rows(), kRowGrain, [&](size_t, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          out[i] = SignOrZero(WeightedVote(matrix.row(i), weights));
        }
      });
  return out;
}

std::vector<double> UnweightedAverageProbs(const LabelMatrix& matrix) {
  std::vector<double> out(matrix.num_rows(), 0.5);
  SharedThreadPool().ParallelForShards(
      0, matrix.num_rows(), kRowGrain, [&](size_t, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          int pos = 0;
          int neg = 0;
          for (const auto& e : matrix.row(i)) {
            if (e.label > 0) {
              ++pos;
            } else {
              ++neg;
            }
          }
          if (pos + neg > 0) {
            out[i] = static_cast<double>(pos) / static_cast<double>(pos + neg);
          }
        }
      });
  return out;
}

std::vector<Label> PluralityVotePredictions(const LabelMatrix& matrix) {
  int k = matrix.cardinality();
  std::vector<Label> out(matrix.num_rows(), kAbstain);
  SharedThreadPool().ParallelForShards(
      0, matrix.num_rows(), kRowGrain, [&](size_t, size_t lo, size_t hi) {
        std::vector<int> counts(static_cast<size_t>(k) + 1, 0);
        for (size_t i = lo; i < hi; ++i) {
          std::fill(counts.begin(), counts.end(), 0);
          for (const auto& e : matrix.row(i)) {
            if (e.label >= 1 && e.label <= k) {
              ++counts[static_cast<size_t>(e.label)];
            }
          }
          int best = 0;
          Label best_label = kAbstain;
          for (Label y = 1; y <= k; ++y) {
            if (counts[static_cast<size_t>(y)] > best) {
              best = counts[static_cast<size_t>(y)];
              best_label = y;
            }
          }
          out[i] = best_label;
        }
      });
  return out;
}

}  // namespace snorkel
