#include "core/advantage.h"

#include <cassert>
#include <cmath>

#include "core/majority_vote.h"
#include "util/math_util.h"
#include "util/thread_pool.h"

namespace snorkel {

namespace {

/// Rows per shard for the sharded Λ passes. Per-shard partial sums are
/// reduced in shard order, and shard boundaries depend only on this
/// constant, so both functions below return bitwise-identical values for
/// any worker-pool size.
constexpr size_t kRowGrain = 4096;

}  // namespace

double AccuracyToWeight(double alpha) {
  return Logit(alpha);
}

double WeightToAccuracy(double w) {
  return Sigmoid(w);
}

double ModelingAdvantage(const LabelMatrix& matrix,
                         const std::vector<Label>& gold,
                         const std::vector<double>& weights) {
  assert(gold.size() == matrix.num_rows());
  assert(weights.size() == matrix.num_lfs());
  size_t m = matrix.num_rows();
  if (m == 0) return 0.0;
  size_t num_shards = (m + kRowGrain - 1) / kRowGrain;
  std::vector<int64_t> shard_net(num_shards, 0);
  SharedThreadPool().ParallelForShards(
      0, m, kRowGrain, [&](size_t shard, size_t lo, size_t hi) {
        int64_t net = 0;
        for (size_t i = lo; i < hi; ++i) {
          double y = static_cast<double>(gold[i]);
          double fw = y * WeightedVote(matrix.row(i), weights);
          double f1 = y * UnweightedVote(matrix.row(i));
          if (fw > 0 && f1 <= 0) {
            ++net;  // f_w correctly disagrees with f_1.
          } else if (fw <= 0 && f1 > 0) {
            --net;  // f_w incorrectly disagrees with f_1.
          }
        }
        shard_net[shard] = net;
      });
  int64_t net = 0;
  for (int64_t v : shard_net) net += v;
  return static_cast<double>(net) / static_cast<double>(m);
}

double PredictedAdvantage(const LabelMatrix& matrix,
                          const AdvantageOptions& options) {
  size_t m = matrix.num_rows();
  if (m == 0) return 0.0;
  size_t num_shards = (m + kRowGrain - 1) / kRowGrain;
  std::vector<double> shard_total(num_shards, 0.0);
  SharedThreadPool().ParallelForShards(
      0, m, kRowGrain, [&](size_t shard, size_t lo, size_t hi) {
        double total = 0.0;
        for (size_t i = lo; i < hi; ++i) {
          LabelMatrix::RowSpan row = matrix.row(i);
          double f1 = UnweightedVote(row);
          // f_w̄: every weight set to the mean w̄, i.e. w̄ * f_1.
          double fw_mean = options.w_mean * f1;
          int c_pos = 0;
          int c_neg = 0;
          for (const auto& e : row) {
            if (e.label > 0) {
              ++c_pos;
            } else {
              ++c_neg;
            }
          }
          for (int y : {+1, -1}) {
            if (static_cast<double>(y) * f1 > 0) {
              continue;  // MV already right for y.
            }
            int cy = y > 0 ? c_pos : c_neg;
            int cny = y > 0 ? c_neg : c_pos;
            // Φ: could a best-case weighting output y at all?
            bool phi = static_cast<double>(cy) * options.w_max >
                       static_cast<double>(cny) * options.w_min;
            if (!phi) continue;
            total += Sigmoid(2.0 * fw_mean * static_cast<double>(y));
          }
        }
        shard_total[shard] = total;
      });
  double total = 0.0;
  for (double v : shard_total) total += v;
  return total / static_cast<double>(m);
}

double LowDensityBound(double mean_density, double mean_accuracy) {
  return mean_density * mean_density * mean_accuracy * (1.0 - mean_accuracy);
}

double HighDensityBound(double label_propensity, double mean_accuracy,
                        double mean_density) {
  double margin = mean_accuracy - 0.5;
  return std::exp(-2.0 * label_propensity * margin * margin * mean_density);
}

}  // namespace snorkel
