#ifndef SNORKEL_CORE_DAWID_SKENE_H_
#define SNORKEL_CORE_DAWID_SKENE_H_

#include <vector>

#include "core/label_matrix.h"
#include "core/types.h"
#include "util/status.h"

namespace snorkel {

/// Hyper-parameters for DawidSkeneModel.
struct DawidSkeneOptions {
  int max_iters = 200;
  /// EM stops when the largest posterior change falls below this.
  double tol = 1e-8;
  /// Additive (Dirichlet) smoothing for confusion rows and class priors.
  double smoothing = 0.1;
  /// When false, class priors stay uniform.
  bool estimate_class_balance = true;
  /// Worker threads for the sharded EM row loops: 0 uses the process-wide
  /// SharedThreadPool. Shard boundaries are fixed constants, so the fitted
  /// model is identical for any value.
  int num_threads = 0;
};

/// The classic Dawid-Skene latent-class model [13], fit with EM. Snorkel's
/// related-work section positions it as the crowdsourcing comparator, and
/// the Crowd task (§4.1.2) — one labeling function per crowd worker, five
/// sentiment classes — is exactly its use case. Supports any cardinality;
/// binary ±1 matrices are mapped internally to class indices.
///
/// Each labeling function j gets a full K x K confusion matrix
/// ρ_j[c][c'] = P(Λ_j = c' | Y = c, Λ_j != ∅); abstentions are missing data
/// (ignored by the likelihood), matching the constant-probability-sampling
/// reading of Theorem 1.
class DawidSkeneModel {
 public:
  explicit DawidSkeneModel(DawidSkeneOptions options = {});

  /// Fits confusion matrices and class priors with EM; initialization is the
  /// plurality-vote posterior.
  Status Fit(const LabelMatrix& matrix);

  /// Restores a fitted model from serialized parameters (the snapshot-store
  /// hook, serve/snapshot.h). `flat_confusions` is row-major [j][c][c']
  /// (j < num_lfs, c = true class, c' = emitted class), the layout
  /// FlatConfusions() produces. Validates shapes and strict positivity
  /// (every probability is log'd), then marks the model fit; posteriors
  /// computed after a restore are bitwise-identical to the model that
  /// produced the parameters.
  Status Restore(int cardinality, size_t num_lfs,
                 std::vector<double> class_priors,
                 const std::vector<double>& flat_confusions);

  bool is_fit() const { return is_fit_; }
  int cardinality() const { return cardinality_; }
  /// Number of labeling functions the model was fit (or restored) over.
  size_t num_lfs() const { return num_lfs_; }
  /// Number of EM iterations actually run.
  int iterations() const { return iterations_; }

  /// Posterior P(Y = c | Λ_i) for each row; columns ordered by class index
  /// (see ClassToLabel for the mapping back to labels).
  std::vector<std::vector<double>> PredictProba(const LabelMatrix& matrix) const;

  /// PredictProba in the serving layout: one flat row-major buffer of
  /// num_rows × cardinality posteriors, computed with the batched
  /// KClassPosteriorRows kernel over precomputed log-tables and sharded
  /// over the worker pool. Bitwise-identical to PredictProba row for row,
  /// for any num_threads (fixed-grain shards, row-pure kernel).
  std::vector<double> PredictProbaFlat(const LabelMatrix& matrix) const;

  /// Confusion matrices flattened row-major to [j][c][c'] — the
  /// serialization layout Restore() accepts.
  std::vector<double> FlatConfusions() const;

  /// Hard MAP labels (in the matrix's label convention).
  std::vector<Label> PredictLabels(const LabelMatrix& matrix) const;

  /// Confusion matrix of LF j, rows = true class, cols = emitted class.
  const std::vector<std::vector<double>>& Confusion(size_t j) const {
    return confusions_[j];
  }

  /// Prior-weighted diagonal mass of LF j's confusion matrix: the
  /// probability a non-abstaining vote is correct.
  double WorkerAccuracy(size_t j) const;

  const std::vector<double>& class_priors() const { return class_priors_; }

  /// Maps a class index (0-based) back to a Label in the convention of the
  /// fitted matrix: binary {+1, -1}, multi-class {1..K}.
  Label ClassToLabel(size_t c) const;

  /// Maps a label to its class index.
  size_t LabelToClass(Label y) const;

 private:
  /// Precomputes the log-space tables PredictProbaFlat streams over:
  /// log_priors_ and the confusion log-table transposed to
  /// [j][emitted][class] so the E-step kernel adds contiguous k-vectors.
  /// Called at the end of Fit() and Restore().
  void BuildLogTables();

  DawidSkeneOptions options_;
  bool is_fit_ = false;
  int cardinality_ = 0;
  int iterations_ = 0;
  size_t num_lfs_ = 0;
  std::vector<double> class_priors_;
  // confusions_[j][c][c'].
  std::vector<std::vector<std::vector<double>>> confusions_;
  // Serving tables (see BuildLogTables).
  std::vector<double> log_priors_;
  std::vector<double> log_conf_emit_;
};

}  // namespace snorkel

#endif  // SNORKEL_CORE_DAWID_SKENE_H_
