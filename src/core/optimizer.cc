#include "core/optimizer.h"

#include <algorithm>

namespace snorkel {

std::string ModelingStrategyToString(ModelingStrategy strategy) {
  switch (strategy) {
    case ModelingStrategy::kMajorityVote:
      return "MV";
    case ModelingStrategy::kGenerativeModel:
      return "GM";
  }
  return "?";
}

ModelingStrategyOptimizer::ModelingStrategyOptimizer(OptimizerOptions options)
    : options_(options) {}

Result<OptimizerDecision> ModelingStrategyOptimizer::Choose(
    const LabelMatrix& matrix) const {
  if (matrix.cardinality() != 2) {
    return Status::InvalidArgument("optimizer supports binary matrices");
  }
  if (options_.gamma < 0.0 || options_.eta <= 0.0 || options_.eta > 0.5) {
    return Status::InvalidArgument("gamma must be >= 0 and eta in (0, 0.5]");
  }

  OptimizerDecision decision;
  decision.predicted_advantage = PredictedAdvantage(matrix, options_.advantage);
  if (decision.predicted_advantage < options_.gamma) {
    decision.strategy = ModelingStrategy::kMajorityVote;
    return decision;
  }

  decision.strategy = ModelingStrategy::kGenerativeModel;
  if (!options_.search_structure || matrix.num_lfs() < 2) {
    return decision;
  }

  // ε grid {η, 2η, ..., 1/2}, per Algorithm 1's loop i = 1 .. 1/(2η).
  std::vector<double> epsilons;
  int steps = static_cast<int>(0.5 / options_.eta);
  for (int i = 1; i <= steps; ++i) {
    epsilons.push_back(static_cast<double>(i) * options_.eta);
  }
  if (epsilons.empty()) epsilons.push_back(options_.eta);

  StructureLearner learner(options_.structure);
  auto sweep = learner.Sweep(matrix, epsilons);
  if (!sweep.ok()) return sweep.status();
  decision.sweep = std::move(sweep).value();

  size_t elbow = StructureLearner::SelectElbowIndex(decision.sweep);
  decision.chosen_epsilon = decision.sweep[elbow].epsilon;
  auto correlations = learner.LearnStructure(matrix, decision.chosen_epsilon);
  if (!correlations.ok()) return correlations.status();
  decision.correlations = std::move(correlations).value();
  return decision;
}

}  // namespace snorkel
