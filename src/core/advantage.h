#ifndef SNORKEL_CORE_ADVANTAGE_H_
#define SNORKEL_CORE_ADVANTAGE_H_

#include <vector>

#include "core/label_matrix.h"
#include "core/types.h"

namespace snorkel {

/// Weight-range prior for the optimizer bound Ã* (paper footnote 8: the
/// defaults correspond to LF accuracies between 62% and 82% with mean 73%,
/// under the log-odds mapping alpha = sigmoid(w)).
struct AdvantageOptions {
  double w_min = 0.5;
  double w_mean = 1.0;
  double w_max = 1.5;
};

/// Converts an LF accuracy in (0,1) to its log-odds accuracy weight
/// w = log(alpha / (1 - alpha)), the weight convention used throughout this
/// library (phi^Acc contributes w_j when the LF agrees with y).
double AccuracyToWeight(double alpha);

/// Inverse of AccuracyToWeight: alpha = sigmoid(w).
double WeightToAccuracy(double w);

/// Modeling advantage A_w (Definition 1): the per-point rate at which the
/// weighted majority vote f_w correctly disagrees with the unweighted
/// majority vote f_1, minus the rate at which it incorrectly disagrees.
/// `gold` holds the true labels in {+1,-1}. Binary matrices only.
double ModelingAdvantage(const LabelMatrix& matrix,
                         const std::vector<Label>& gold,
                         const std::vector<double>& weights);

/// The optimizer's upper bound Ã*(Λ) (Proposition 2): expected counts of
/// rows where a best-case weighted vote could flip an incorrect unweighted
/// majority vote,
///   Ã*(Λ) = (1/m) Σ_i Σ_{y∈±1} 1{y f_1(Λ_i) <= 0} Φ(Λ_i,y) σ(2 f_w̄(Λ_i) y),
/// with Φ(Λ_i,y) = 1{c_y(Λ_i) w_max > c_{-y}(Λ_i) w_min}.
double PredictedAdvantage(const LabelMatrix& matrix,
                          const AdvantageOptions& options = {});

/// Low-density upper bound (Proposition 1): E[A*] <= d̄^2 ᾱ (1 - ᾱ), where
/// d̄ is the expected label density and ᾱ the mean LF accuracy.
double LowDensityBound(double mean_density, double mean_accuracy);

/// High-density upper bound (Theorem 1, from the Dawid-Skene crowdsourcing
/// analysis): E[A*] <= exp(-2 p_l (ᾱ - 1/2)^2 d̄).
double HighDensityBound(double label_propensity, double mean_accuracy,
                        double mean_density);

}  // namespace snorkel

#endif  // SNORKEL_CORE_ADVANTAGE_H_
