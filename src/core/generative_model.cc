#include "core/generative_model.h"

#include "core/dawid_skene.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/csr_kernels.h"
#include "util/adam.h"
#include "util/math_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace snorkel {

namespace {

/// Rows per shard in the sharded positive-phase / inference loops. A
/// constant (never derived from the pool size), so per-shard partial sums
/// reduced in shard order are bitwise-identical for any thread count.
constexpr size_t kRowGrain = 1024;

/// Columns per shard in the column-major accumulation pass; each column is
/// an independent gather-reduce, so the partition cannot affect results.
constexpr size_t kColGrain = 8;

/// Cap on the dense column-major vote copy used to compute the correlation
/// sufficient statistics with vectorizable column compares; larger matrices
/// fall back to the sparse per-row scan.
constexpr size_t kDenseVoteBytesCap = 64u << 20;

/// One persistent Gibbs chain over a generic data point (y, λ_1..λ_n). Used
/// to estimate the model expectation E_{p_w}[φ] in the negative phase. Each
/// chain owns an RNG stream seeded from (options.seed, chain index), so
/// chains sweep concurrently yet reproduce bitwise for a fixed seed no
/// matter how they are scheduled.
struct GibbsChain {
  int8_t y = 1;                // Latent label in {+1, -1}.
  std::vector<int8_t> votes;   // λ_j in {-1, 0, +1}.
  SplitMix64 rng{0};
};

/// Correlation adjacency in CSR form: neighbors of LF j (and the index of
/// the correlation coupling them) live at [offsets[j], offsets[j+1]).
struct CorrAdjacency {
  std::vector<size_t> offsets;
  std::vector<uint32_t> other;
  std::vector<uint32_t> corr;
};

CorrAdjacency BuildAdjacency(const std::vector<CorrelationPair>& correlations,
                             size_t n) {
  CorrAdjacency adj;
  std::vector<size_t> degree(n, 0);
  for (const auto& pair : correlations) {
    ++degree[pair.j];
    ++degree[pair.k];
  }
  adj.offsets.assign(n + 1, 0);
  for (size_t j = 0; j < n; ++j) adj.offsets[j + 1] = adj.offsets[j] + degree[j];
  adj.other.resize(adj.offsets[n]);
  adj.corr.resize(adj.offsets[n]);
  std::vector<size_t> cursor(adj.offsets.begin(), adj.offsets.end() - 1);
  for (size_t c = 0; c < correlations.size(); ++c) {
    size_t j = correlations[c].j;
    size_t k = correlations[c].k;
    adj.other[cursor[j]] = static_cast<uint32_t>(k);
    adj.corr[cursor[j]++] = static_cast<uint32_t>(c);
    adj.other[cursor[k]] = static_cast<uint32_t>(j);
    adj.corr[cursor[k]++] = static_cast<uint32_t>(c);
  }
  return adj;
}

/// One Gibbs sweep in multiplicative form: the three vote-state scores are
/// products of per-epoch-precomputed exp(weight) factors, so the inner loop
/// does no exp at all (the original form paid three exps per LF resample).
/// Factors are bounded by exp(±weight_clamp) per term; if a pathological
/// hub LF's products ever approach double overflow, that LF falls back to
/// a log-space (max-subtracted) recompute. Neighbor contributions and the
/// vote draw are branchless — the sampled states are near-uniformly
/// random, so data-dependent branches here would mispredict about half the
/// time.
///
/// `e_lab[j]` = exp(w^Lab_j); `e_lab_acc[j]` = exp(w^Lab_j + w^Acc_j), the
/// score of the vote state that agrees with y (φ^Acc fires when λ_j = y).
void SweepChain(GibbsChain* chain, size_t n, const double* params,
                const double* e_lab_acc, const double* e_lab,
                const double* e_corr, const CorrAdjacency& adj,
                double prior_logit) {
  // Resample each vote λ_j given (y, λ_rest).
  for (size_t j = 0; j < n; ++j) {
    bool y_pos = chain->y > 0;
    double p_abstain = 1.0;
    double p_pos = y_pos ? e_lab_acc[j] : e_lab[j];
    double p_neg = y_pos ? e_lab[j] : e_lab_acc[j];
    for (size_t a = adj.offsets[j]; a < adj.offsets[j + 1]; ++a) {
      // Conditional *selects* (not branches): the neighbor's state is
      // near-uniform, so each factor multiplies exactly one score via cmov.
      double wc = e_corr[adj.corr[a]];
      int8_t lo = chain->votes[adj.other[a]];
      p_abstain *= lo == 0 ? wc : 1.0;
      p_pos *= lo > 0 ? wc : 1.0;
      p_neg *= lo < 0 ? wc : 1.0;
    }
    double total = p_abstain + p_pos + p_neg;
    if (!(total >= 1e-300 && total < 1e300)) {
      // Degenerate hub LF (correlation degree in the hundreds): the
      // products can overflow — or, with strongly negative correlation
      // weights, underflow to 0.0, which would turn the draw below into a
      // constant -1. Recompute this LF's scores in log space with the
      // classic max-subtraction, which is immune to magnitude either way
      // (the condition also catches inf/NaN).
      double s_abstain = 0.0;
      double s_pos = params[n + j];
      double s_neg = params[n + j];
      if (y_pos) {
        s_pos += params[j];
      } else {
        s_neg += params[j];
      }
      for (size_t a = adj.offsets[j]; a < adj.offsets[j + 1]; ++a) {
        double wc = params[2 * n + adj.corr[a]];
        int8_t lo = chain->votes[adj.other[a]];
        if (lo == 0) {
          s_abstain += wc;
        } else if (lo > 0) {
          s_pos += wc;
        } else {
          s_neg += wc;
        }
      }
      double hi = std::max({s_abstain, s_pos, s_neg});
      p_abstain = std::exp(s_abstain - hi);
      p_pos = std::exp(s_pos - hi);
      p_neg = std::exp(s_neg - hi);
      total = p_abstain + p_pos + p_neg;
    }
    double r = chain->rng.Uniform() * total;
    // r < p_abstain                 -> abstain (0)
    // p_abstain <= r < p_abs + p_pos -> +1
    // otherwise                     -> -1
    double take_neg = p_abstain + p_pos;
    chain->votes[j] = static_cast<int8_t>(static_cast<int>(r >= p_abstain) -
                                          2 * static_cast<int>(r >= take_neg));
  }
  // Resample y given the votes (class prior included).
  double f = prior_logit;
  for (size_t j = 0; j < n; ++j) {
    f += params[j] * static_cast<double>(chain->votes[j]);
  }
  chain->y = chain->rng.Uniform() < Sigmoid(f) ? 1 : -1;
}

}  // namespace

GenerativeModel::GenerativeModel(GenerativeModelOptions options)
    : options_(options) {}

Status GenerativeModel::RestoreWeights(
    size_t num_lfs, std::vector<double> acc_weights,
    std::vector<double> lab_weights, std::vector<double> corr_weights,
    std::vector<CorrelationPair> correlations) {
  if (num_lfs == 0) {
    return Status::InvalidArgument("cannot restore a model over zero LFs");
  }
  if (acc_weights.size() != num_lfs || lab_weights.size() != num_lfs) {
    return Status::InvalidArgument(
        "accuracy/propensity weight count does not match num_lfs");
  }
  if (corr_weights.size() != correlations.size()) {
    return Status::InvalidArgument(
        "correlation weight count does not match correlation pair count");
  }
  // Require the exact invariant Fit establishes — normalized pairs, sorted,
  // no duplicates — so a restored model is always a state Fit could have
  // produced (a duplicated pair would double-count its correlation factor).
  for (size_t i = 0; i < correlations.size(); ++i) {
    const CorrelationPair& pair = correlations[i];
    if (pair.j >= pair.k || pair.k >= num_lfs) {
      return Status::InvalidArgument(
          "restored correlation pair is not normalized or out of range");
    }
    if (i > 0 && !(correlations[i - 1] < pair)) {
      return Status::InvalidArgument(
          "restored correlation set is not sorted and duplicate-free");
    }
  }
  num_lfs_ = num_lfs;
  acc_weights_ = std::move(acc_weights);
  lab_weights_ = std::move(lab_weights);
  corr_weights_ = std::move(corr_weights);
  correlations_ = std::move(correlations);
  is_fit_ = true;
  return Status::OK();
}

Status GenerativeModel::Fit(const LabelMatrix& matrix,
                            const std::vector<CorrelationPair>& correlations) {
  if (matrix.cardinality() != 2) {
    return Status::InvalidArgument(
        "GenerativeModel supports binary matrices; use DawidSkeneModel for "
        "multi-class tasks");
  }
  if (matrix.num_lfs() == 0) {
    return Status::InvalidArgument("label matrix has no labeling functions");
  }
  if (matrix.num_rows() == 0) {
    return Status::InvalidArgument("label matrix has no rows");
  }

  size_t n = matrix.num_lfs();
  size_t m = matrix.num_rows();

  // Normalize the correlation set to j < k and reject invalid pairs.
  correlations_.clear();
  for (CorrelationPair pair : correlations) {
    if (pair.j == pair.k) {
      return Status::InvalidArgument("correlation pair with j == k");
    }
    if (pair.j > pair.k) std::swap(pair.j, pair.k);
    if (pair.k >= n) {
      return Status::OutOfRange("correlation pair index out of range");
    }
    correlations_.push_back(pair);
  }
  std::sort(correlations_.begin(), correlations_.end());
  correlations_.erase(
      std::unique(correlations_.begin(), correlations_.end()),
      correlations_.end());

  num_lfs_ = n;
  size_t num_corr = correlations_.size();
  bool use_gibbs = num_corr > 0 || options_.force_gibbs;

  // The worker pool shared by every sharded loop below. Shard boundaries
  // are functions of (m, kRowGrain) and chain indices only, so the fitted
  // weights do not depend on the pool size.
  ScopedPool pool(options_.num_threads);

  // Correlation degree of each LF, for the degree-scaled initialization.
  std::vector<int> corr_degree(n, 0);
  for (const auto& pair : correlations_) {
    ++corr_degree[pair.j];
    ++corr_degree[pair.k];
  }

  // Parameter vector: [acc (n) | lab (n) | corr (|C|)].
  std::vector<double> params(2 * n + num_corr, 0.0);
  std::vector<double> acc_prior(n, options_.acc_prior_weight);
  for (size_t j = 0; j < n; ++j) {
    if (options_.degree_scaled_init) {
      acc_prior[j] /= 1.0 + static_cast<double>(corr_degree[j]);
    }
    params[j] = acc_prior[j];
  }

  // ---- Dawid-Skene EM warm start (imbalanced data only). ----
  // On unbalanced data the marginal likelihood has an "all-majority-class"
  // mode that cold-started SGD falls into via its init transient. The
  // classical Dawid-Skene estimator [13] — per-class confusion matrices
  // with estimated class priors, EM over the latent labels — is robust to
  // class imbalance, so we warm-start the accuracy weights from its per-LF
  // accuracies, re-applying the degree scaling so redundant LF blocks still
  // start with the posterior influence of roughly one LF (the Example 3.1
  // basin). On balanced data the degree-scaled prior init alone is stable
  // and strictly better for heavily-duplicated LF blocks (whose agreement
  // structure biases Dawid-Skene itself), so the warm start is skipped.
  if (options_.em_warm_start_iters > 0 &&
      std::fabs(options_.class_balance - 0.5) > 0.02) {
    DawidSkeneOptions ds_options;
    ds_options.max_iters = options_.em_warm_start_iters;
    ds_options.smoothing = 1.0;
    ds_options.num_threads = options_.num_threads;
    DawidSkeneModel warm(ds_options);
    double acc_floor =
        options_.allow_adversarial ? -options_.acc_weight_cap : 0.02;
    if (warm.Fit(matrix).ok()) {
      for (size_t j = 0; j < n; ++j) {
        // Only genuine blocks (3+ modeled correlations) get their warm-start
        // influence divided; isolated correlated pairs keep full weight.
        double excess_degree = std::max(0, corr_degree[j] - 2);
        double scale = options_.degree_scaled_init
                           ? 1.0 / (1.0 + excess_degree)
                           : 1.0;
        params[j] = Clip(scale * Logit(warm.WorkerAccuracy(j)), acc_floor,
                         options_.acc_weight_cap);
      }
    }
  }

  // Flat SoA views over Λ for the SIMD kernels; one linear pass replaces
  // the per-row heap walk everywhere below. CSR drives the row-major
  // posterior sweep, CSC the column-major accumulation into per-LF
  // statistics.
  CsrView view = CsrView::FromMatrix(matrix);
  CscView col_view = CscView::FromMatrix(matrix);
  size_t nnz = view.lf.size();

  // ---- Positive-phase sufficient statistics that do not depend on w. ----
  // coverage[j] = fraction of rows LF j votes on; neg_count[j] = number of
  // negative votes (the w-independent part of the accuracy statistic:
  // Σ_i [Λ_ij > 0] q_i + [Λ_ij < 0] (1 - q_i) = neg_count_j + Σ sign·q).
  std::vector<double> coverage(n, 0.0);
  std::vector<double> neg_count(n, 0.0);
  for (size_t t = 0; t < nnz; ++t) {
    coverage[view.lf[t]] += 1.0;
    if (view.sign[t] < 0.0) neg_count[view.lf[t]] += 1.0;
  }

  // Moment-matched propensity init: choose w^Lab_j so the model's implied
  // coverage equals the observed coverage at the warm-started accuracy
  // weights,
  //   P(Λ_j != ∅) = e^{wl}(1 + e^{wa}) / z_j = c_j  =>
  //   wl = logit(c_j) - log(1 + e^{wa}).
  // This puts the SGD refinement at a near-stationary point of the
  // marginal likelihood instead of handing it a huge init transient.
  for (size_t j = 0; j < n; ++j) {
    double c = Clip(coverage[j] / static_cast<double>(m), 1e-4, 1.0 - 1e-4);
    params[n + j] = Clip(Logit(c) - std::log(1.0 + std::exp(params[j])),
                         -options_.weight_clamp, options_.weight_clamp);
  }
  for (double& c : coverage) c /= static_cast<double>(m);

  std::vector<double> pos_corr(num_corr, 0.0);
  if (num_corr > 0) {
    // φ^Corr counts agreement INCLUDING joint abstention, so the statistic
    // needs dense columns. Small matrices get a dense column-major vote
    // copy whose per-pair equality scan the compiler vectorizes; large ones
    // fall back to the sparse row-at-a-time scan.
    if (m * n <= kDenseVoteBytesCap) {
      std::vector<int8_t> col_votes(m * n, 0);
      for (size_t t = 0; t < nnz; ++t) {
        col_votes[static_cast<size_t>(view.lf[t]) * m + view.row[t]] =
            view.sign[t] > 0.0 ? 1 : -1;
      }
      for (size_t c = 0; c < num_corr; ++c) {
        const int8_t* a = col_votes.data() + correlations_[c].j * m;
        const int8_t* b = col_votes.data() + correlations_[c].k * m;
        size_t equal = 0;
        for (size_t i = 0; i < m; ++i) equal += a[i] == b[i];
        pos_corr[c] = static_cast<double>(equal) / static_cast<double>(m);
      }
    } else {
      std::vector<Label> dense_row(n, kAbstain);
      for (size_t i = 0; i < m; ++i) {
        for (const auto& e : matrix.row(i)) dense_row[e.lf] = e.label;
        for (size_t c = 0; c < num_corr; ++c) {
          if (dense_row[correlations_[c].j] == dense_row[correlations_[c].k]) {
            pos_corr[c] += 1.0;
          }
        }
        for (const auto& e : matrix.row(i)) dense_row[e.lf] = kAbstain;
      }
      for (double& p : pos_corr) p /= static_cast<double>(m);
    }
  }

  CorrAdjacency adj = BuildAdjacency(correlations_, n);

  // ---- Persistent Gibbs chains: one RNG stream per chain, seeded from
  // (seed, chain index), so chains initialize, burn in, and sweep
  // concurrently with bitwise-reproducible results at any thread count. ----
  size_t num_chains = use_gibbs ? static_cast<size_t>(options_.num_chains) : 0;
  std::vector<GibbsChain> chains(num_chains);
  // Per-epoch exp(weight) factor tables for the multiplicative sweep.
  std::vector<double> e_lab_acc(n), e_lab(n), e_corr(num_corr);
  auto refresh_exp_tables = [&] {
    for (size_t j = 0; j < n; ++j) {
      e_lab_acc[j] = std::exp(params[n + j] + params[j]);
      e_lab[j] = std::exp(params[n + j]);
    }
    for (size_t c = 0; c < num_corr; ++c) {
      e_corr[c] = std::exp(params[2 * n + c]);
    }
  };
  if (use_gibbs) {
    refresh_exp_tables();
    double prior_logit = Logit(options_.class_balance);
    pool->ParallelForShards(
        0, num_chains, 1, [&](size_t, size_t lo, size_t hi) {
          for (size_t c = lo; c < hi; ++c) {
            GibbsChain& chain = chains[c];
            chain.rng = SplitMix64(options_.seed, c);
            chain.votes.assign(n, 0);
            chain.y = chain.rng.Uniform() < 0.5 ? 1 : -1;
            for (size_t j = 0; j < n; ++j) {
              double r = chain.rng.Uniform();
              chain.votes[j] = r < 1.0 / 3 ? 0 : (r < 2.0 / 3 ? 1 : -1);
            }
            for (int s = 0; s < options_.burn_in_sweeps; ++s) {
              SweepChain(&chain, n, params.data(), e_lab_acc.data(), e_lab.data(),
                         e_corr.data(), adj, prior_logit);
            }
          }
        });
  }

  AdamOptimizer adam(params.size(), {.learning_rate = options_.learning_rate});
  std::vector<double> grads(params.size(), 0.0);
  std::vector<double> pos_acc(n, 0.0);
  std::vector<double> neg_lab(n, 0.0);
  std::vector<double> neg_acc(n, 0.0);
  std::vector<double> neg_corr(num_corr, 0.0);

  // Scratch for the sharded loops, allocated once. Positive-phase per-LF
  // sums come from the column pass (one column = one shard-independent
  // reduction); negative-phase tallies are integer counts (exactly
  // associative, so the chain partition cannot change results even in
  // principle).
  std::vector<double> f_buf(m), q_buf(m);
  std::vector<double> pos_sum(n, 0.0);
  size_t counts_stride = 2 * n + num_corr;
  std::vector<uint32_t> chain_counts(num_chains * counts_stride, 0);

  double prior_shift = Logit(options_.class_balance);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    // ---- Positive phase: E_{Y|Λ,w}[φ], exact (only φ^Acc depends on y).
    // The class-balance prior enters here as a fixed log-odds factor on y;
    // without it the class-symmetric factor graph has an "all-positive"
    // mode on unbalanced data in which every negative-polarity LF looks
    // inaccurate. The prior does not alter the (y-symmetric) negative
    // phase. Two sharded passes with the SIMD kernels: a row-major sweep
    // computing q = σ(f), then a column-major gather-reduce into the per-LF
    // statistic. ----
    pool->ParallelForShards(
        0, m, kRowGrain, [&](size_t, size_t lo, size_t hi) {
          WeightedRowSums(view, params.data(), prior_shift, lo, hi,
                          f_buf.data());
          SigmoidBatch(f_buf.data() + lo, q_buf.data() + lo, hi - lo);
        });
    pool->ParallelForShards(0, n, kColGrain,
                            [&](size_t, size_t lo, size_t hi) {
                              ColumnSignedSums(col_view, q_buf.data(), lo, hi,
                                               pos_sum.data());
                            });
    for (size_t j = 0; j < n; ++j) {
      pos_acc[j] = (neg_count[j] + pos_sum[j]) / static_cast<double>(m);
    }

    // ---- Negative phase: E_{p_w}[φ]. ----
    if (!use_gibbs) {
      // Exact: z_j = 1 + e^{w^Lab_j} + e^{w^Lab_j + w^Acc_j}.
      for (size_t j = 0; j < n; ++j) {
        double wl = params[n + j];
        double wa = params[j];
        double e_lab_j = std::exp(wl);
        double e_both = std::exp(wl + wa);
        double z = 1.0 + e_lab_j + e_both;
        neg_lab[j] = (e_lab_j + e_both) / z;
        neg_acc[j] = e_both / z;
      }
    } else {
      refresh_exp_tables();
      std::fill(chain_counts.begin(), chain_counts.end(), 0);
      pool->ParallelForShards(
          0, num_chains, 1, [&](size_t, size_t clo, size_t chi) {
            for (size_t c = clo; c < chi; ++c) {
              GibbsChain& chain = chains[c];
              for (int s = 0; s < options_.gibbs_sweeps; ++s) {
                SweepChain(&chain, n, params.data(), e_lab_acc.data(),
                           e_lab.data(), e_corr.data(), adj, prior_shift);
              }
              uint32_t* counts = chain_counts.data() + c * counts_stride;
              for (size_t j = 0; j < n; ++j) {
                if (chain.votes[j] != 0) ++counts[j];
                if (chain.votes[j] == chain.y) ++counts[n + j];
              }
              for (size_t cc = 0; cc < num_corr; ++cc) {
                if (chain.votes[correlations_[cc].j] ==
                    chain.votes[correlations_[cc].k]) {
                  ++counts[2 * n + cc];
                }
              }
            }
          });
      double inv = 1.0 / static_cast<double>(num_chains);
      for (size_t j = 0; j < n; ++j) {
        uint64_t lab = 0;
        uint64_t acc = 0;
        for (size_t c = 0; c < num_chains; ++c) {
          lab += chain_counts[c * counts_stride + j];
          acc += chain_counts[c * counts_stride + n + j];
        }
        neg_lab[j] = static_cast<double>(lab) * inv;
        neg_acc[j] = static_cast<double>(acc) * inv;
      }
      for (size_t cc = 0; cc < num_corr; ++cc) {
        uint64_t corr = 0;
        for (size_t c = 0; c < num_chains; ++c) {
          corr += chain_counts[c * counts_stride + 2 * n + cc];
        }
        neg_corr[cc] = static_cast<double>(corr) * inv;
      }
    }

    // ---- Loss gradient = neg - pos. ----
    for (size_t j = 0; j < n; ++j) {
      grads[j] = neg_acc[j] - pos_acc[j];
      grads[n + j] =
          options_.learn_propensity ? neg_lab[j] - coverage[j] : 0.0;
    }
    for (size_t c = 0; c < num_corr; ++c) {
      grads[2 * n + c] = neg_corr[c] - pos_corr[c];
    }
    adam.Step(&params, grads);
    // Decoupled (AdamW-style) pull toward the prior. Routing the prior
    // through Adam would not work: along unidentifiable directions (e.g. a
    // zero-overlap LF's accuracy) the likelihood gradient is numerical
    // noise, and Adam normalizes noise into full-size steps that random-walk
    // the weight to a clamp. A deterministic decay keeps such weights at
    // their prior while being negligible against real gradients.
    for (size_t j = 0; j < n; ++j) {
      params[j] += options_.l2 * (acc_prior[j] - params[j]);
    }
    for (size_t c = 0; c < num_corr; ++c) {
      params[2 * n + c] -= options_.l2 * params[2 * n + c];
    }
    double acc_floor =
        options_.allow_adversarial ? -options_.acc_weight_cap : 0.02;
    for (size_t j = 0; j < n; ++j) {
      params[j] = Clip(params[j], acc_floor, options_.acc_weight_cap);
    }
    for (size_t p = n; p < params.size(); ++p) {
      params[p] = Clip(params[p], -options_.weight_clamp,
                       options_.weight_clamp);
    }
  }

  acc_weights_.assign(params.begin(), params.begin() + static_cast<long>(n));
  lab_weights_.assign(params.begin() + static_cast<long>(n),
                      params.begin() + static_cast<long>(2 * n));
  corr_weights_.assign(params.begin() + static_cast<long>(2 * n), params.end());
  is_fit_ = true;
  return Status::OK();
}

std::vector<double> GenerativeModel::PredictProba(
    const LabelMatrix& matrix, bool apply_class_balance) const {
  assert(is_fit_);
  assert(matrix.num_lfs() == num_lfs_);
  size_t m = matrix.num_rows();
  std::vector<double> out(m);
  if (m == 0) return out;
  double prior_shift = apply_class_balance ? Logit(options_.class_balance) : 0.0;
  CsrView view = CsrView::FromMatrix(matrix);
  std::vector<double> f(m);
  if (m <= kRowGrain) {
    // One shard: identical to what ParallelForShards would run inline, but
    // skips pool resolution — serving-sized batches stay free of any
    // thread spawn even when num_threads pins a dedicated training pool.
    WeightedRowSums(view, acc_weights_.data(), prior_shift, 0, m, f.data());
    SigmoidBatch(f.data(), out.data(), m);
    return out;
  }
  ScopedPool pool(options_.num_threads);
  pool->ParallelForShards(0, m, kRowGrain,
                          [&](size_t, size_t lo, size_t hi) {
                            WeightedRowSums(view, acc_weights_.data(),
                                            prior_shift, lo, hi, f.data());
                            SigmoidBatch(f.data() + lo, out.data() + lo,
                                         hi - lo);
                          });
  return out;
}

std::vector<Label> GenerativeModel::PredictLabels(
    const LabelMatrix& matrix) const {
  std::vector<double> proba = PredictProba(matrix);
  std::vector<Label> out(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) {
    if (proba[i] > 0.5) {
      out[i] = 1;
    } else if (proba[i] < 0.5) {
      out[i] = -1;
    } else {
      out[i] = kAbstain;
    }
  }
  return out;
}

std::vector<double> GenerativeModel::EstimatedAccuracies() const {
  assert(is_fit_);
  std::vector<double> out(acc_weights_.size());
  for (size_t j = 0; j < out.size(); ++j) out[j] = Sigmoid(acc_weights_[j]);
  return out;
}

Result<double> GenerativeModel::LogMarginalLikelihood(
    const LabelMatrix& matrix) const {
  if (!is_fit_) {
    return Status::FailedPrecondition("model is not fit");
  }
  if (!correlations_.empty()) {
    return Status::FailedPrecondition(
        "exact marginal likelihood unavailable with correlation factors");
  }
  if (matrix.num_lfs() != num_lfs_) {
    return Status::InvalidArgument("matrix has wrong number of LFs");
  }
  // log Z = log 2 + Σ_j log z_j with z_j = 1 + e^{w^Lab_j}(1 + e^{w^Acc_j}).
  double log_z = std::log(2.0);
  for (size_t j = 0; j < num_lfs_; ++j) {
    log_z += std::log(1.0 + std::exp(lab_weights_[j]) *
                                (1.0 + std::exp(acc_weights_[j])));
  }
  double total = 0.0;
  for (size_t i = 0; i < matrix.num_rows(); ++i) {
    double s_pos = 0.0;
    double s_neg = 0.0;
    double t = 0.0;
    for (const auto& e : matrix.row(i)) {
      t += lab_weights_[e.lf];
      if (e.label > 0) {
        s_pos += acc_weights_[e.lf];
      } else {
        s_neg += acc_weights_[e.lf];
      }
    }
    total += t + LogAddExp(s_pos, s_neg) - log_z;
  }
  return total / static_cast<double>(matrix.num_rows());
}

}  // namespace snorkel
