#include "core/generative_model.h"

#include "core/dawid_skene.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/adam.h"
#include "util/math_util.h"
#include "util/random.h"

namespace snorkel {

namespace {

/// One persistent Gibbs chain over a generic data point (y, λ_1..λ_n). Used
/// to estimate the model expectation E_{p_w}[φ] in the negative phase.
struct GibbsChain {
  int y = 1;                  // Latent label in {+1, -1}.
  std::vector<Label> votes;   // λ_j in {-1, 0, +1}.
};

}  // namespace

GenerativeModel::GenerativeModel(GenerativeModelOptions options)
    : options_(options) {}

Status GenerativeModel::RestoreWeights(
    size_t num_lfs, std::vector<double> acc_weights,
    std::vector<double> lab_weights, std::vector<double> corr_weights,
    std::vector<CorrelationPair> correlations) {
  if (num_lfs == 0) {
    return Status::InvalidArgument("cannot restore a model over zero LFs");
  }
  if (acc_weights.size() != num_lfs || lab_weights.size() != num_lfs) {
    return Status::InvalidArgument(
        "accuracy/propensity weight count does not match num_lfs");
  }
  if (corr_weights.size() != correlations.size()) {
    return Status::InvalidArgument(
        "correlation weight count does not match correlation pair count");
  }
  // Require the exact invariant Fit establishes — normalized pairs, sorted,
  // no duplicates — so a restored model is always a state Fit could have
  // produced (a duplicated pair would double-count its correlation factor).
  for (size_t i = 0; i < correlations.size(); ++i) {
    const CorrelationPair& pair = correlations[i];
    if (pair.j >= pair.k || pair.k >= num_lfs) {
      return Status::InvalidArgument(
          "restored correlation pair is not normalized or out of range");
    }
    if (i > 0 && !(correlations[i - 1] < pair)) {
      return Status::InvalidArgument(
          "restored correlation set is not sorted and duplicate-free");
    }
  }
  num_lfs_ = num_lfs;
  acc_weights_ = std::move(acc_weights);
  lab_weights_ = std::move(lab_weights);
  corr_weights_ = std::move(corr_weights);
  correlations_ = std::move(correlations);
  is_fit_ = true;
  return Status::OK();
}

Status GenerativeModel::Fit(const LabelMatrix& matrix,
                            const std::vector<CorrelationPair>& correlations) {
  if (matrix.cardinality() != 2) {
    return Status::InvalidArgument(
        "GenerativeModel supports binary matrices; use DawidSkeneModel for "
        "multi-class tasks");
  }
  if (matrix.num_lfs() == 0) {
    return Status::InvalidArgument("label matrix has no labeling functions");
  }
  if (matrix.num_rows() == 0) {
    return Status::InvalidArgument("label matrix has no rows");
  }

  size_t n = matrix.num_lfs();
  size_t m = matrix.num_rows();

  // Normalize the correlation set to j < k and reject invalid pairs.
  correlations_.clear();
  for (CorrelationPair pair : correlations) {
    if (pair.j == pair.k) {
      return Status::InvalidArgument("correlation pair with j == k");
    }
    if (pair.j > pair.k) std::swap(pair.j, pair.k);
    if (pair.k >= n) {
      return Status::OutOfRange("correlation pair index out of range");
    }
    correlations_.push_back(pair);
  }
  std::sort(correlations_.begin(), correlations_.end());
  correlations_.erase(
      std::unique(correlations_.begin(), correlations_.end()),
      correlations_.end());

  num_lfs_ = n;
  size_t num_corr = correlations_.size();
  bool use_gibbs = num_corr > 0 || options_.force_gibbs;

  // Correlation degree of each LF, for the degree-scaled initialization.
  std::vector<int> corr_degree(n, 0);
  for (const auto& pair : correlations_) {
    ++corr_degree[pair.j];
    ++corr_degree[pair.k];
  }

  // Parameter vector: [acc (n) | lab (n) | corr (|C|)].
  std::vector<double> params(2 * n + num_corr, 0.0);
  std::vector<double> acc_prior(n, options_.acc_prior_weight);
  for (size_t j = 0; j < n; ++j) {
    if (options_.degree_scaled_init) {
      acc_prior[j] /= 1.0 + static_cast<double>(corr_degree[j]);
    }
    params[j] = acc_prior[j];
  }

  // ---- Dawid-Skene EM warm start (imbalanced data only). ----
  // On unbalanced data the marginal likelihood has an "all-majority-class"
  // mode that cold-started SGD falls into via its init transient. The
  // classical Dawid-Skene estimator [13] — per-class confusion matrices
  // with estimated class priors, EM over the latent labels — is robust to
  // class imbalance, so we warm-start the accuracy weights from its per-LF
  // accuracies, re-applying the degree scaling so redundant LF blocks still
  // start with the posterior influence of roughly one LF (the Example 3.1
  // basin). On balanced data the degree-scaled prior init alone is stable
  // and strictly better for heavily-duplicated LF blocks (whose agreement
  // structure biases Dawid-Skene itself), so the warm start is skipped.
  if (options_.em_warm_start_iters > 0 &&
      std::fabs(options_.class_balance - 0.5) > 0.02) {
    DawidSkeneOptions ds_options;
    ds_options.max_iters = options_.em_warm_start_iters;
    ds_options.smoothing = 1.0;
    DawidSkeneModel warm(ds_options);
    double acc_floor =
        options_.allow_adversarial ? -options_.acc_weight_cap : 0.02;
    if (warm.Fit(matrix).ok()) {
      for (size_t j = 0; j < n; ++j) {
        // Only genuine blocks (3+ modeled correlations) get their warm-start
        // influence divided; isolated correlated pairs keep full weight.
        double excess_degree = std::max(0, corr_degree[j] - 2);
        double scale = options_.degree_scaled_init
                           ? 1.0 / (1.0 + excess_degree)
                           : 1.0;
        params[j] = Clip(scale * Logit(warm.WorkerAccuracy(j)), acc_floor,
                         options_.acc_weight_cap);
      }
    }
  }

  // Moment-matched propensity init: choose w^Lab_j so the model's implied
  // coverage equals the observed coverage at the warm-started accuracy
  // weights,
  //   P(Λ_j != ∅) = e^{wl}(1 + e^{wa}) / z_j = c_j  =>
  //   wl = logit(c_j) - log(1 + e^{wa}).
  // This puts the SGD refinement at a near-stationary point of the
  // marginal likelihood instead of handing it a huge init transient.
  {
    std::vector<double> vote_count(n, 0.0);
    for (size_t i = 0; i < m; ++i) {
      for (const auto& e : matrix.row(i)) vote_count[e.lf] += 1.0;
    }
    for (size_t j = 0; j < n; ++j) {
      double c = Clip(vote_count[j] / static_cast<double>(m), 1e-4,
                      1.0 - 1e-4);
      params[n + j] = Clip(Logit(c) - std::log(1.0 + std::exp(params[j])),
                           -options_.weight_clamp, options_.weight_clamp);
    }
  }

  // ---- Positive-phase sufficient statistics that do not depend on w. ----
  std::vector<double> coverage(n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    for (const auto& e : matrix.row(i)) coverage[e.lf] += 1.0;
  }
  for (double& c : coverage) c /= static_cast<double>(m);

  std::vector<double> pos_corr(num_corr, 0.0);
  if (num_corr > 0) {
    std::vector<Label> dense_row(n, kAbstain);
    for (size_t i = 0; i < m; ++i) {
      for (const auto& e : matrix.row(i)) dense_row[e.lf] = e.label;
      for (size_t c = 0; c < num_corr; ++c) {
        if (dense_row[correlations_[c].j] == dense_row[correlations_[c].k]) {
          pos_corr[c] += 1.0;
        }
      }
      for (const auto& e : matrix.row(i)) dense_row[e.lf] = kAbstain;
    }
    for (double& p : pos_corr) p /= static_cast<double>(m);
  }

  // Correlation adjacency for the Gibbs sampler: lf -> [(other, corr idx)].
  std::vector<std::vector<std::pair<size_t, size_t>>> adjacency(n);
  for (size_t c = 0; c < num_corr; ++c) {
    adjacency[correlations_[c].j].push_back({correlations_[c].k, c});
    adjacency[correlations_[c].k].push_back({correlations_[c].j, c});
  }

  Rng rng(options_.seed);
  std::vector<GibbsChain> chains;
  auto sweep_chain = [&](GibbsChain* chain) {
    // Resample each vote λ_j given (y, λ_rest).
    for (size_t j = 0; j < n; ++j) {
      double s_abstain = 0.0;
      double s_pos = params[n + j];   // w^Lab_j.
      double s_neg = params[n + j];
      if (chain->y > 0) {
        s_pos += params[j];  // w^Acc_j fires when λ_j = y.
      } else {
        s_neg += params[j];
      }
      for (const auto& [other, c] : adjacency[j]) {
        double wc = params[2 * n + c];
        Label lo = chain->votes[other];
        if (lo == kAbstain) {
          s_abstain += wc;
        } else if (lo > 0) {
          s_pos += wc;
        } else {
          s_neg += wc;
        }
      }
      double hi = std::max({s_abstain, s_pos, s_neg});
      double p0 = std::exp(s_abstain - hi);
      double pp = std::exp(s_pos - hi);
      double pn = std::exp(s_neg - hi);
      double r = rng.Uniform() * (p0 + pp + pn);
      chain->votes[j] = r < p0 ? kAbstain : (r < p0 + pp ? 1 : -1);
    }
    // Resample y given the votes (class prior included).
    double f = Logit(options_.class_balance);
    for (size_t j = 0; j < n; ++j) {
      f += params[j] * static_cast<double>(chain->votes[j]);
    }
    chain->y = rng.Bernoulli(Sigmoid(f)) ? 1 : -1;
  };

  if (use_gibbs) {
    chains.resize(static_cast<size_t>(options_.num_chains));
    for (auto& chain : chains) {
      chain.votes.assign(n, kAbstain);
      chain.y = rng.Bernoulli(0.5) ? 1 : -1;
      for (size_t j = 0; j < n; ++j) {
        double r = rng.Uniform();
        chain.votes[j] = r < 1.0 / 3 ? kAbstain : (r < 2.0 / 3 ? 1 : -1);
      }
      for (int s = 0; s < options_.burn_in_sweeps; ++s) sweep_chain(&chain);
    }
  }

  AdamOptimizer adam(params.size(), {.learning_rate = options_.learning_rate});
  std::vector<double> grads(params.size(), 0.0);
  std::vector<double> pos_acc(n, 0.0);
  std::vector<double> neg_lab(n, 0.0);
  std::vector<double> neg_acc(n, 0.0);
  std::vector<double> neg_corr(num_corr, 0.0);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    // ---- Positive phase: E_{Y|Λ,w}[φ], exact (only φ^Acc depends on y).
    // The class-balance prior enters here as a fixed log-odds factor on y;
    // without it the class-symmetric factor graph has an "all-positive"
    // mode on unbalanced data in which every negative-polarity LF looks
    // inaccurate. The prior does not alter the (y-symmetric) negative
    // phase. ----
    double prior_shift = Logit(options_.class_balance);
    std::fill(pos_acc.begin(), pos_acc.end(), 0.0);
    for (size_t i = 0; i < m; ++i) {
      const auto& row = matrix.row(i);
      double f = prior_shift;
      for (const auto& e : row) f += params[e.lf] * static_cast<double>(e.label);
      double q = Sigmoid(f);  // p(y = +1 | Λ_i).
      for (const auto& e : row) {
        pos_acc[e.lf] += e.label > 0 ? q : 1.0 - q;
      }
    }
    for (double& p : pos_acc) p /= static_cast<double>(m);

    // ---- Negative phase: E_{p_w}[φ]. ----
    if (!use_gibbs) {
      // Exact: z_j = 1 + e^{w^Lab_j} + e^{w^Lab_j + w^Acc_j}.
      for (size_t j = 0; j < n; ++j) {
        double wl = params[n + j];
        double wa = params[j];
        double e_lab = std::exp(wl);
        double e_both = std::exp(wl + wa);
        double z = 1.0 + e_lab + e_both;
        neg_lab[j] = (e_lab + e_both) / z;
        neg_acc[j] = e_both / z;
      }
    } else {
      std::fill(neg_lab.begin(), neg_lab.end(), 0.0);
      std::fill(neg_acc.begin(), neg_acc.end(), 0.0);
      std::fill(neg_corr.begin(), neg_corr.end(), 0.0);
      for (auto& chain : chains) {
        for (int s = 0; s < options_.gibbs_sweeps; ++s) sweep_chain(&chain);
        for (size_t j = 0; j < n; ++j) {
          if (chain.votes[j] != kAbstain) neg_lab[j] += 1.0;
          if (chain.votes[j] == chain.y) neg_acc[j] += 1.0;
        }
        for (size_t c = 0; c < num_corr; ++c) {
          if (chain.votes[correlations_[c].j] ==
              chain.votes[correlations_[c].k]) {
            neg_corr[c] += 1.0;
          }
        }
      }
      double inv = 1.0 / static_cast<double>(chains.size());
      for (double& v : neg_lab) v *= inv;
      for (double& v : neg_acc) v *= inv;
      for (double& v : neg_corr) v *= inv;
    }

    // ---- Loss gradient = neg - pos. ----
    for (size_t j = 0; j < n; ++j) {
      grads[j] = neg_acc[j] - pos_acc[j];
      grads[n + j] =
          options_.learn_propensity ? neg_lab[j] - coverage[j] : 0.0;
    }
    for (size_t c = 0; c < num_corr; ++c) {
      grads[2 * n + c] = neg_corr[c] - pos_corr[c];
    }
    adam.Step(&params, grads);
    // Decoupled (AdamW-style) pull toward the prior. Routing the prior
    // through Adam would not work: along unidentifiable directions (e.g. a
    // zero-overlap LF's accuracy) the likelihood gradient is numerical
    // noise, and Adam normalizes noise into full-size steps that random-walk
    // the weight to a clamp. A deterministic decay keeps such weights at
    // their prior while being negligible against real gradients.
    for (size_t j = 0; j < n; ++j) {
      params[j] += options_.l2 * (acc_prior[j] - params[j]);
    }
    for (size_t c = 0; c < num_corr; ++c) {
      params[2 * n + c] -= options_.l2 * params[2 * n + c];
    }
    double acc_floor =
        options_.allow_adversarial ? -options_.acc_weight_cap : 0.02;
    for (size_t j = 0; j < n; ++j) {
      params[j] = Clip(params[j], acc_floor, options_.acc_weight_cap);
    }
    for (size_t p = n; p < params.size(); ++p) {
      params[p] = Clip(params[p], -options_.weight_clamp,
                       options_.weight_clamp);
    }
  }

  acc_weights_.assign(params.begin(), params.begin() + static_cast<long>(n));
  lab_weights_.assign(params.begin() + static_cast<long>(n),
                      params.begin() + static_cast<long>(2 * n));
  corr_weights_.assign(params.begin() + static_cast<long>(2 * n), params.end());
  is_fit_ = true;
  return Status::OK();
}

std::vector<double> GenerativeModel::PredictProba(
    const LabelMatrix& matrix, bool apply_class_balance) const {
  assert(is_fit_);
  assert(matrix.num_lfs() == num_lfs_);
  double prior_shift = apply_class_balance ? Logit(options_.class_balance) : 0.0;
  std::vector<double> out(matrix.num_rows());
  for (size_t i = 0; i < matrix.num_rows(); ++i) {
    double f = prior_shift;
    for (const auto& e : matrix.row(i)) {
      f += acc_weights_[e.lf] * static_cast<double>(e.label);
    }
    out[i] = Sigmoid(f);
  }
  return out;
}

std::vector<Label> GenerativeModel::PredictLabels(
    const LabelMatrix& matrix) const {
  std::vector<double> proba = PredictProba(matrix);
  std::vector<Label> out(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) {
    if (proba[i] > 0.5) {
      out[i] = 1;
    } else if (proba[i] < 0.5) {
      out[i] = -1;
    } else {
      out[i] = kAbstain;
    }
  }
  return out;
}

std::vector<double> GenerativeModel::EstimatedAccuracies() const {
  assert(is_fit_);
  std::vector<double> out(acc_weights_.size());
  for (size_t j = 0; j < out.size(); ++j) out[j] = Sigmoid(acc_weights_[j]);
  return out;
}

Result<double> GenerativeModel::LogMarginalLikelihood(
    const LabelMatrix& matrix) const {
  if (!is_fit_) {
    return Status::FailedPrecondition("model is not fit");
  }
  if (!correlations_.empty()) {
    return Status::FailedPrecondition(
        "exact marginal likelihood unavailable with correlation factors");
  }
  if (matrix.num_lfs() != num_lfs_) {
    return Status::InvalidArgument("matrix has wrong number of LFs");
  }
  // log Z = log 2 + Σ_j log z_j with z_j = 1 + e^{w^Lab_j}(1 + e^{w^Acc_j}).
  double log_z = std::log(2.0);
  for (size_t j = 0; j < num_lfs_; ++j) {
    log_z += std::log(1.0 + std::exp(lab_weights_[j]) *
                                (1.0 + std::exp(acc_weights_[j])));
  }
  double total = 0.0;
  for (size_t i = 0; i < matrix.num_rows(); ++i) {
    double s_pos = 0.0;
    double s_neg = 0.0;
    double t = 0.0;
    for (const auto& e : matrix.row(i)) {
      t += lab_weights_[e.lf];
      if (e.label > 0) {
        s_pos += acc_weights_[e.lf];
      } else {
        s_neg += acc_weights_[e.lf];
      }
    }
    total += t + LogAddExp(s_pos, s_neg) - log_z;
  }
  return total / static_cast<double>(matrix.num_rows());
}

}  // namespace snorkel
