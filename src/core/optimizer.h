#ifndef SNORKEL_CORE_OPTIMIZER_H_
#define SNORKEL_CORE_OPTIMIZER_H_

#include <string>
#include <vector>

#include "core/advantage.h"
#include "core/label_matrix.h"
#include "core/structure_learner.h"
#include "core/types.h"
#include "util/status.h"

namespace snorkel {

/// Which labeling model to use for a pipeline execution (§3.1.2).
enum class ModelingStrategy {
  kMajorityVote,
  kGenerativeModel,
};

std::string ModelingStrategyToString(ModelingStrategy strategy);

/// Hyper-parameters for ModelingStrategyOptimizer (Algorithm 1 inputs).
struct OptimizerOptions {
  /// Advantage tolerance γ: when the predicted advantage Ã*(Λ) is below γ,
  /// the optimizer skips generative-model training in favor of majority
  /// vote. 0.01 = one accuracy point.
  double gamma = 0.01;
  /// Structure search resolution η: the ε grid is {η, 2η, ..., 1/2}.
  double eta = 0.02;
  /// Weight-range prior (w_min, w̄, w_max) for Ã*.
  AdvantageOptions advantage;
  /// Structure-learning configuration used during the ε sweep.
  StructureLearnerOptions structure;
  /// When false, the GM decision skips the correlation search entirely and
  /// returns an accuracy-only model configuration.
  bool search_structure = true;
};

/// The optimizer's output: the chosen strategy and — when the generative
/// model is selected — the elbow-point ε and its correlation set.
struct OptimizerDecision {
  ModelingStrategy strategy = ModelingStrategy::kMajorityVote;
  /// Ã*(Λ), the predicted modeling advantage (Proposition 2).
  double predicted_advantage = 0.0;
  /// Selected ε (0 when strategy is MV or structure search is disabled).
  double chosen_epsilon = 0.0;
  /// Correlation pairs to model at chosen_epsilon.
  std::vector<CorrelationPair> correlations;
  /// The full (ε, #correlations) sweep, ordered by descending ε.
  std::vector<StructureSweepPoint> sweep;
};

/// The two-stage, rule-based modeling-strategy optimizer of Algorithm 1:
///
///   if Ã*(Λ) < γ: return MV
///   for i in 1 .. 1/(2η): ε = i·η; C = LearnStructure(Λ, ε)
///   ε* = SelectElbowPoint(counts); return GM at ε*
///
/// Stage one decides whether learning LF accuracies is worth the training
/// time at all; stage two picks how many correlations to model.
class ModelingStrategyOptimizer {
 public:
  explicit ModelingStrategyOptimizer(OptimizerOptions options = {});

  /// Runs Algorithm 1 on a binary label matrix.
  Result<OptimizerDecision> Choose(const LabelMatrix& matrix) const;

  const OptimizerOptions& options() const { return options_; }

 private:
  OptimizerOptions options_;
};

}  // namespace snorkel

#endif  // SNORKEL_CORE_OPTIMIZER_H_
