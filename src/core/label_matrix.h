#ifndef SNORKEL_CORE_LABEL_MATRIX_H_
#define SNORKEL_CORE_LABEL_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/status.h"

namespace snorkel {

/// The sparse label matrix Λ ∈ (Y ∪ {∅})^{m×n}: m data points (rows) by n
/// labeling functions (columns), storing only non-abstention votes. This is
/// the sole interface between the labeling-function layer and the modeling
/// layer (paper §2): every downstream component — majority vote, generative
/// model, structure learning, the modeling-strategy optimizer — consumes
/// only Λ.
///
/// Storage is CSR (compressed sparse row): one flat, row-major `Entry` array
/// plus a row-offset array, so a full pass over Λ is a single linear scan
/// with no per-row heap indirection. This is the layout the training and
/// inference hot loops (GenerativeModel, majority vote, structure learning)
/// stream over.
class LabelMatrix {
 public:
  /// One non-abstention vote: labeling function `lf` voted `label`.
  struct Entry {
    uint32_t lf = 0;
    Label label = kAbstain;

    friend bool operator==(const Entry& a, const Entry& b) {
      return a.lf == b.lf && a.label == b.label;
    }
  };

  /// Lightweight view of one row's non-abstention entries (sorted by LF
  /// index) inside the flat CSR array. Cheap to copy; valid as long as the
  /// owning LabelMatrix is alive and unmodified.
  class RowSpan {
   public:
    RowSpan() = default;
    RowSpan(const Entry* begin, const Entry* end) : begin_(begin), end_(end) {}

    const Entry* begin() const { return begin_; }
    const Entry* end() const { return end_; }
    size_t size() const { return static_cast<size_t>(end_ - begin_); }
    bool empty() const { return begin_ == end_; }
    const Entry& operator[](size_t idx) const { return begin_[idx]; }
    const Entry& front() const { return *begin_; }
    const Entry& back() const { return *(end_ - 1); }

   private:
    const Entry* begin_ = nullptr;
    const Entry* end_ = nullptr;
  };

  LabelMatrix() = default;

  /// Builds from dense rows: `dense[i][j]` is LF j's vote on data point i
  /// (0 = abstain). `cardinality` is 2 for binary ({+1,-1}) or K for
  /// {1..K}-class tasks.
  static Result<LabelMatrix> FromDense(
      const std::vector<std::vector<Label>>& dense, int cardinality = 2);

  /// Builds from (row, lf, label) triplets.
  static Result<LabelMatrix> FromTriplets(
      size_t num_rows, size_t num_lfs,
      const std::vector<std::tuple<size_t, size_t, Label>>& triplets,
      int cardinality = 2);

  size_t num_rows() const { return row_offsets_.size() - 1; }
  size_t num_lfs() const { return num_lfs_; }
  int cardinality() const { return cardinality_; }

  /// Non-abstention entries of row i, sorted by LF index.
  RowSpan row(size_t i) const {
    return RowSpan(entries_.data() + row_offsets_[i],
                   entries_.data() + row_offsets_[i + 1]);
  }

  /// The flat row-major entry array (CSR values); rows are delimited by
  /// row_offsets(). Hot loops stream this directly.
  const std::vector<Entry>& entries() const { return entries_; }

  /// CSR row-offset array of size num_rows() + 1; row i occupies
  /// entries()[row_offsets()[i] .. row_offsets()[i+1]).
  const std::vector<size_t>& row_offsets() const { return row_offsets_; }

  /// LF j's vote on row i (kAbstain when j did not vote). Binary-searches
  /// the sorted row.
  Label At(size_t i, size_t j) const;

  /// Number of non-abstention votes across the matrix.
  size_t NumNonAbstains() const { return entries_.size(); }

  /// c_y(Λ_i): number of LFs voting `y` on row i (y != kAbstain).
  int CountLabels(size_t i, Label y) const;

  /// Mean number of non-abstention labels per data point (d_Λ, §3.1.1).
  double LabelDensity() const;

  /// Fraction of rows on which LF j votes.
  double Coverage(size_t j) const;

  /// Fraction of rows on which LF j votes and at least one other LF votes.
  double Overlap(size_t j) const;

  /// Fraction of rows on which LF j votes and at least one other LF casts a
  /// different non-abstention vote.
  double Conflict(size_t j) const;

  /// (positive votes, negative votes) emitted by LF j (binary tasks).
  std::pair<int64_t, int64_t> PolarityCounts(size_t j) const;

  /// Accuracy of LF j's non-abstention votes against gold labels; returns
  /// 0.5 when LF j never votes on a gold-labeled row.
  double EmpiricalAccuracy(size_t j, const std::vector<Label>& gold) const;

  /// Fraction of rows with at least one non-abstention vote.
  double FractionCovered() const;

  /// Restriction of Λ to the given LF columns (re-indexed 0..cols.size()-1);
  /// used by the ablation and LF-set-growth experiments (Table 6, Fig. 6).
  LabelMatrix SelectColumns(const std::vector<size_t>& cols) const;

  /// Restriction of Λ to the given rows (in the given order); used to split
  /// train/dev/test candidate sets.
  LabelMatrix SelectRows(const std::vector<size_t>& row_indices) const;

  /// Per-LF summary (coverage/overlap/conflict/polarity) as an ASCII table;
  /// the C++ analog of Snorkel's `LFAnalysis`.
  std::string SummaryTable(const std::vector<std::string>* lf_names = nullptr,
                           const std::vector<Label>* gold = nullptr) const;

 private:
  LabelMatrix(std::vector<Entry> entries, std::vector<size_t> row_offsets,
              size_t num_lfs, int cardinality)
      : entries_(std::move(entries)),
        row_offsets_(std::move(row_offsets)),
        num_lfs_(num_lfs),
        cardinality_(cardinality) {}

  /// True iff `label` is valid for this matrix's cardinality.
  bool ValidLabel(Label label) const;

  std::vector<Entry> entries_;
  /// Always num_rows + 1 elements; {0} for the empty matrix.
  std::vector<size_t> row_offsets_ = {0};
  size_t num_lfs_ = 0;
  int cardinality_ = 2;
};

}  // namespace snorkel

#endif  // SNORKEL_CORE_LABEL_MATRIX_H_
