#include "core/label_matrix.h"

#include <algorithm>
#include <cassert>
#include <tuple>

#include "util/string_util.h"
#include "util/table_printer.h"

namespace snorkel {

bool LabelMatrix::ValidLabel(Label label) const {
  // Abstains are never stored as entries; otherwise defer to the shared
  // vote-validity rule (core/types.h) the appliers use.
  return label != kAbstain && LabelValidFor(label, cardinality_);
}

Result<LabelMatrix> LabelMatrix::FromDense(
    const std::vector<std::vector<Label>>& dense, int cardinality) {
  if (cardinality < 2) {
    return Status::InvalidArgument("cardinality must be >= 2");
  }
  size_t num_lfs = dense.empty() ? 0 : dense[0].size();
  std::vector<Entry> entries;
  std::vector<size_t> offsets;
  offsets.reserve(dense.size() + 1);
  offsets.push_back(0);
  for (size_t i = 0; i < dense.size(); ++i) {
    if (dense[i].size() != num_lfs) {
      return Status::InvalidArgument("ragged dense label matrix at row " +
                                     std::to_string(i));
    }
    for (size_t j = 0; j < num_lfs; ++j) {
      Label label = dense[i][j];
      if (label == kAbstain) continue;
      if (!LabelValidFor(label, cardinality)) {
        return Status::InvalidArgument(
            "label " + std::to_string(label) + " invalid for cardinality " +
            std::to_string(cardinality));
      }
      entries.push_back(Entry{static_cast<uint32_t>(j), label});
    }
    offsets.push_back(entries.size());
  }
  return LabelMatrix(std::move(entries), std::move(offsets), num_lfs,
                     cardinality);
}

Result<LabelMatrix> LabelMatrix::FromTriplets(
    size_t num_rows, size_t num_lfs,
    const std::vector<std::tuple<size_t, size_t, Label>>& triplets,
    int cardinality) {
  if (cardinality < 2) {
    return Status::InvalidArgument("cardinality must be >= 2");
  }
  // Counting sort into CSR: count per row, prefix-sum, fill, then sort each
  // (short) row by LF index.
  std::vector<size_t> counts(num_rows, 0);
  for (const auto& [i, j, label] : triplets) {
    if (i >= num_rows || j >= num_lfs) {
      return Status::OutOfRange("triplet index out of range");
    }
    if (label == kAbstain) continue;
    if (!LabelValidFor(label, cardinality)) {
      return Status::InvalidArgument("label " + std::to_string(label) +
                                     " invalid for cardinality " +
                                     std::to_string(cardinality));
    }
    ++counts[i];
  }
  std::vector<size_t> offsets(num_rows + 1, 0);
  for (size_t i = 0; i < num_rows; ++i) offsets[i + 1] = offsets[i] + counts[i];
  std::vector<Entry> entries(offsets[num_rows]);
  std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [i, j, label] : triplets) {
    if (label == kAbstain) continue;
    entries[cursor[i]++] = Entry{static_cast<uint32_t>(j), label};
  }
  for (size_t i = 0; i < num_rows; ++i) {
    Entry* begin = entries.data() + offsets[i];
    Entry* end = entries.data() + offsets[i + 1];
    std::sort(begin, end,
              [](const Entry& a, const Entry& b) { return a.lf < b.lf; });
    // Duplicate (row, lf) pairs are a caller bug.
    for (Entry* e = begin + 1; e < end; ++e) {
      if (e->lf == (e - 1)->lf) {
        return Status::InvalidArgument("duplicate vote for lf " +
                                       std::to_string(e->lf));
      }
    }
  }
  return LabelMatrix(std::move(entries), std::move(offsets), num_lfs,
                     cardinality);
}

Label LabelMatrix::At(size_t i, size_t j) const {
  assert(i + 1 < row_offsets_.size() && j < num_lfs_);
  RowSpan r = row(i);
  const Entry* it = std::lower_bound(
      r.begin(), r.end(), static_cast<uint32_t>(j),
      [](const Entry& e, uint32_t lf) { return e.lf < lf; });
  if (it != r.end() && it->lf == j) return it->label;
  return kAbstain;
}

int LabelMatrix::CountLabels(size_t i, Label y) const {
  assert(i + 1 < row_offsets_.size());
  int count = 0;
  for (const Entry& e : row(i)) {
    if (e.label == y) ++count;
  }
  return count;
}

double LabelMatrix::LabelDensity() const {
  if (num_rows() == 0) return 0.0;
  return static_cast<double>(entries_.size()) /
         static_cast<double>(num_rows());
}

double LabelMatrix::Coverage(size_t j) const {
  size_t m = num_rows();
  if (m == 0) return 0.0;
  int64_t votes = 0;
  for (size_t i = 0; i < m; ++i) {
    for (const Entry& e : row(i)) {
      if (e.lf == j) {
        ++votes;
        break;
      }
    }
  }
  return static_cast<double>(votes) / static_cast<double>(m);
}

double LabelMatrix::Overlap(size_t j) const {
  size_t m = num_rows();
  if (m == 0) return 0.0;
  int64_t overlapping = 0;
  for (size_t i = 0; i < m; ++i) {
    RowSpan r = row(i);
    if (r.size() < 2) continue;
    for (const Entry& e : r) {
      if (e.lf == j) {
        ++overlapping;
        break;
      }
    }
  }
  return static_cast<double>(overlapping) / static_cast<double>(m);
}

double LabelMatrix::Conflict(size_t j) const {
  size_t m = num_rows();
  if (m == 0) return 0.0;
  int64_t conflicting = 0;
  for (size_t i = 0; i < m; ++i) {
    RowSpan r = row(i);
    Label own = kAbstain;
    for (const Entry& e : r) {
      if (e.lf == j) {
        own = e.label;
        break;
      }
    }
    if (own == kAbstain) continue;
    for (const Entry& e : r) {
      if (e.lf != j && e.label != own) {
        ++conflicting;
        break;
      }
    }
  }
  return static_cast<double>(conflicting) / static_cast<double>(m);
}

std::pair<int64_t, int64_t> LabelMatrix::PolarityCounts(size_t j) const {
  int64_t pos = 0;
  int64_t neg = 0;
  for (const Entry& e : entries_) {
    if (e.lf != j) continue;
    if (e.label > 0) {
      ++pos;
    } else {
      ++neg;
    }
  }
  return {pos, neg};
}

double LabelMatrix::EmpiricalAccuracy(size_t j,
                                      const std::vector<Label>& gold) const {
  size_t m = num_rows();
  assert(gold.size() == m);
  int64_t votes = 0;
  int64_t correct = 0;
  for (size_t i = 0; i < m; ++i) {
    for (const Entry& e : row(i)) {
      if (e.lf != j) continue;
      ++votes;
      if (e.label == gold[i]) ++correct;
      break;
    }
  }
  if (votes == 0) return 0.5;
  return static_cast<double>(correct) / static_cast<double>(votes);
}

double LabelMatrix::FractionCovered() const {
  size_t m = num_rows();
  if (m == 0) return 0.0;
  int64_t covered = 0;
  for (size_t i = 0; i < m; ++i) {
    if (row_offsets_[i + 1] > row_offsets_[i]) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(m);
}

LabelMatrix LabelMatrix::SelectColumns(const std::vector<size_t>& cols) const {
  std::vector<uint32_t> remap(num_lfs_, UINT32_MAX);
  for (size_t new_j = 0; new_j < cols.size(); ++new_j) {
    assert(cols[new_j] < num_lfs_);
    remap[cols[new_j]] = static_cast<uint32_t>(new_j);
  }
  size_t m = num_rows();
  std::vector<Entry> entries;
  std::vector<size_t> offsets;
  offsets.reserve(m + 1);
  offsets.push_back(0);
  for (size_t i = 0; i < m; ++i) {
    size_t row_begin = entries.size();
    for (const Entry& e : row(i)) {
      if (remap[e.lf] != UINT32_MAX) {
        entries.push_back(Entry{remap[e.lf], e.label});
      }
    }
    // Remapping may permute LF order within the row; restore sortedness.
    std::sort(entries.begin() + static_cast<long>(row_begin), entries.end(),
              [](const Entry& a, const Entry& b) { return a.lf < b.lf; });
    offsets.push_back(entries.size());
  }
  return LabelMatrix(std::move(entries), std::move(offsets), cols.size(),
                     cardinality_);
}

LabelMatrix LabelMatrix::SelectRows(
    const std::vector<size_t>& row_indices) const {
  std::vector<size_t> offsets;
  offsets.reserve(row_indices.size() + 1);
  offsets.push_back(0);
  for (size_t i : row_indices) {
    assert(i + 1 < row_offsets_.size());
    offsets.push_back(offsets.back() + (row_offsets_[i + 1] - row_offsets_[i]));
  }
  std::vector<Entry> entries;
  entries.reserve(offsets.back());
  for (size_t i : row_indices) {
    RowSpan r = row(i);
    entries.insert(entries.end(), r.begin(), r.end());
  }
  return LabelMatrix(std::move(entries), std::move(offsets), num_lfs_,
                     cardinality_);
}

std::string LabelMatrix::SummaryTable(
    const std::vector<std::string>* lf_names,
    const std::vector<Label>* gold) const {
  std::vector<std::string> header = {"LF",       "Coverage", "Overlap",
                                     "Conflict", "Pos",      "Neg"};
  if (gold != nullptr) header.push_back("Emp. Acc");
  TablePrinter table(header);
  for (size_t j = 0; j < num_lfs_; ++j) {
    auto [pos, neg] = PolarityCounts(j);
    std::vector<std::string> row = {
        lf_names != nullptr && j < lf_names->size() ? (*lf_names)[j]
                                                    : "lf_" + std::to_string(j),
        FormatDouble(Coverage(j), 3),
        FormatDouble(Overlap(j), 3),
        FormatDouble(Conflict(j), 3),
        std::to_string(pos),
        std::to_string(neg)};
    if (gold != nullptr) row.push_back(FormatDouble(EmpiricalAccuracy(j, *gold), 3));
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

}  // namespace snorkel
