#include "core/label_matrix.h"

#include <algorithm>
#include <cassert>
#include <tuple>

#include "util/string_util.h"
#include "util/table_printer.h"

namespace snorkel {

namespace {

bool LabelValidFor(Label label, int cardinality) {
  if (label == kAbstain) return false;  // Abstains are never stored.
  if (cardinality == 2) return label == 1 || label == -1;
  return label >= 1 && label <= cardinality;
}

}  // namespace

bool LabelMatrix::ValidLabel(Label label) const {
  return LabelValidFor(label, cardinality_);
}

Result<LabelMatrix> LabelMatrix::FromDense(
    const std::vector<std::vector<Label>>& dense, int cardinality) {
  if (cardinality < 2) {
    return Status::InvalidArgument("cardinality must be >= 2");
  }
  size_t num_lfs = dense.empty() ? 0 : dense[0].size();
  std::vector<std::vector<Entry>> rows;
  rows.reserve(dense.size());
  for (size_t i = 0; i < dense.size(); ++i) {
    if (dense[i].size() != num_lfs) {
      return Status::InvalidArgument("ragged dense label matrix at row " +
                                     std::to_string(i));
    }
    std::vector<Entry> row;
    for (size_t j = 0; j < num_lfs; ++j) {
      Label label = dense[i][j];
      if (label == kAbstain) continue;
      if (!LabelValidFor(label, cardinality)) {
        return Status::InvalidArgument(
            "label " + std::to_string(label) + " invalid for cardinality " +
            std::to_string(cardinality));
      }
      row.push_back(Entry{static_cast<uint32_t>(j), label});
    }
    rows.push_back(std::move(row));
  }
  return LabelMatrix(std::move(rows), num_lfs, cardinality);
}

Result<LabelMatrix> LabelMatrix::FromTriplets(
    size_t num_rows, size_t num_lfs,
    const std::vector<std::tuple<size_t, size_t, Label>>& triplets,
    int cardinality) {
  if (cardinality < 2) {
    return Status::InvalidArgument("cardinality must be >= 2");
  }
  std::vector<std::vector<Entry>> rows(num_rows);
  for (const auto& [i, j, label] : triplets) {
    if (i >= num_rows || j >= num_lfs) {
      return Status::OutOfRange("triplet index out of range");
    }
    if (label == kAbstain) continue;
    if (!LabelValidFor(label, cardinality)) {
      return Status::InvalidArgument("label " + std::to_string(label) +
                                     " invalid for cardinality " +
                                     std::to_string(cardinality));
    }
    rows[i].push_back(Entry{static_cast<uint32_t>(j), label});
  }
  for (auto& row : rows) {
    std::sort(row.begin(), row.end(),
              [](const Entry& a, const Entry& b) { return a.lf < b.lf; });
    // Duplicate (row, lf) pairs are a caller bug.
    for (size_t k = 1; k < row.size(); ++k) {
      if (row[k].lf == row[k - 1].lf) {
        return Status::InvalidArgument("duplicate vote for lf " +
                                       std::to_string(row[k].lf));
      }
    }
  }
  return LabelMatrix(std::move(rows), num_lfs, cardinality);
}

Label LabelMatrix::At(size_t i, size_t j) const {
  assert(i < rows_.size() && j < num_lfs_);
  const auto& row = rows_[i];
  auto it = std::lower_bound(
      row.begin(), row.end(), static_cast<uint32_t>(j),
      [](const Entry& e, uint32_t lf) { return e.lf < lf; });
  if (it != row.end() && it->lf == j) return it->label;
  return kAbstain;
}

size_t LabelMatrix::NumNonAbstains() const {
  size_t total = 0;
  for (const auto& row : rows_) total += row.size();
  return total;
}

int LabelMatrix::CountLabels(size_t i, Label y) const {
  assert(i < rows_.size());
  int count = 0;
  for (const Entry& e : rows_[i]) {
    if (e.label == y) ++count;
  }
  return count;
}

double LabelMatrix::LabelDensity() const {
  if (rows_.empty()) return 0.0;
  return static_cast<double>(NumNonAbstains()) /
         static_cast<double>(rows_.size());
}

double LabelMatrix::Coverage(size_t j) const {
  if (rows_.empty()) return 0.0;
  int64_t votes = 0;
  for (const auto& row : rows_) {
    for (const Entry& e : row) {
      if (e.lf == j) {
        ++votes;
        break;
      }
    }
  }
  return static_cast<double>(votes) / static_cast<double>(rows_.size());
}

double LabelMatrix::Overlap(size_t j) const {
  if (rows_.empty()) return 0.0;
  int64_t overlapping = 0;
  for (const auto& row : rows_) {
    bool has_j = false;
    for (const Entry& e : row) {
      if (e.lf == j) has_j = true;
    }
    if (has_j && row.size() >= 2) ++overlapping;
  }
  return static_cast<double>(overlapping) / static_cast<double>(rows_.size());
}

double LabelMatrix::Conflict(size_t j) const {
  if (rows_.empty()) return 0.0;
  int64_t conflicting = 0;
  for (const auto& row : rows_) {
    Label own = kAbstain;
    for (const Entry& e : row) {
      if (e.lf == j) own = e.label;
    }
    if (own == kAbstain) continue;
    for (const Entry& e : row) {
      if (e.lf != j && e.label != own) {
        ++conflicting;
        break;
      }
    }
  }
  return static_cast<double>(conflicting) / static_cast<double>(rows_.size());
}

std::pair<int64_t, int64_t> LabelMatrix::PolarityCounts(size_t j) const {
  int64_t pos = 0;
  int64_t neg = 0;
  for (const auto& row : rows_) {
    for (const Entry& e : row) {
      if (e.lf != j) continue;
      if (e.label > 0) {
        ++pos;
      } else {
        ++neg;
      }
    }
  }
  return {pos, neg};
}

double LabelMatrix::EmpiricalAccuracy(size_t j,
                                      const std::vector<Label>& gold) const {
  assert(gold.size() == rows_.size());
  int64_t votes = 0;
  int64_t correct = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    for (const Entry& e : rows_[i]) {
      if (e.lf != j) continue;
      ++votes;
      if (e.label == gold[i]) ++correct;
    }
  }
  if (votes == 0) return 0.5;
  return static_cast<double>(correct) / static_cast<double>(votes);
}

double LabelMatrix::FractionCovered() const {
  if (rows_.empty()) return 0.0;
  int64_t covered = 0;
  for (const auto& row : rows_) {
    if (!row.empty()) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(rows_.size());
}

LabelMatrix LabelMatrix::SelectColumns(const std::vector<size_t>& cols) const {
  std::vector<uint32_t> remap(num_lfs_, UINT32_MAX);
  for (size_t new_j = 0; new_j < cols.size(); ++new_j) {
    assert(cols[new_j] < num_lfs_);
    remap[cols[new_j]] = static_cast<uint32_t>(new_j);
  }
  std::vector<std::vector<Entry>> rows(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    for (const Entry& e : rows_[i]) {
      if (remap[e.lf] != UINT32_MAX) {
        rows[i].push_back(Entry{remap[e.lf], e.label});
      }
    }
    std::sort(rows[i].begin(), rows[i].end(),
              [](const Entry& a, const Entry& b) { return a.lf < b.lf; });
  }
  return LabelMatrix(std::move(rows), cols.size(), cardinality_);
}

LabelMatrix LabelMatrix::SelectRows(
    const std::vector<size_t>& row_indices) const {
  std::vector<std::vector<Entry>> rows;
  rows.reserve(row_indices.size());
  for (size_t i : row_indices) {
    assert(i < rows_.size());
    rows.push_back(rows_[i]);
  }
  return LabelMatrix(std::move(rows), num_lfs_, cardinality_);
}

std::string LabelMatrix::SummaryTable(
    const std::vector<std::string>* lf_names,
    const std::vector<Label>* gold) const {
  std::vector<std::string> header = {"LF",       "Coverage", "Overlap",
                                     "Conflict", "Pos",      "Neg"};
  if (gold != nullptr) header.push_back("Emp. Acc");
  TablePrinter table(header);
  for (size_t j = 0; j < num_lfs_; ++j) {
    auto [pos, neg] = PolarityCounts(j);
    std::vector<std::string> row = {
        lf_names != nullptr && j < lf_names->size() ? (*lf_names)[j]
                                                    : "lf_" + std::to_string(j),
        FormatDouble(Coverage(j), 3),
        FormatDouble(Overlap(j), 3),
        FormatDouble(Conflict(j), 3),
        std::to_string(pos),
        std::to_string(neg)};
    if (gold != nullptr) row.push_back(FormatDouble(EmpiricalAccuracy(j, *gold), 3));
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

}  // namespace snorkel
