#include "core/structure_learner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "util/math_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace snorkel {

namespace {

/// Mutable optimization state for all n per-LF conditionals; kept across ε
/// values during a warm-started sweep.
struct ThetaState {
  // pair_weights[j][k]: weight coupling Λ_j to Λ_k in LF j's conditional.
  std::vector<std::vector<double>> pair_weights;
  std::vector<double> acc;
  std::vector<double> lab;

  explicit ThetaState(size_t n)
      : pair_weights(n, std::vector<double>(n, 0.0)),
        acc(n, 1.0),
        lab(n, 0.0) {}
};

/// Subsampled view of the label matrix with per-row vote counts. Rows are
/// CSR spans into the (caller-owned) matrix — no copying.
struct Workset {
  std::vector<LabelMatrix::RowSpan> rows;
  std::vector<int> c_pos;
  std::vector<int> c_neg;
};

Workset BuildWorkset(const LabelMatrix& matrix, size_t max_rows,
                     uint64_t seed) {
  Workset ws;
  size_t m = matrix.num_rows();
  std::vector<size_t> indices;
  if (m > max_rows) {
    Rng rng(seed);
    indices = rng.SampleWithoutReplacement(m, max_rows);
  } else {
    indices.resize(m);
    for (size_t i = 0; i < m; ++i) indices[i] = i;
  }
  ws.rows.reserve(indices.size());
  ws.c_pos.reserve(indices.size());
  ws.c_neg.reserve(indices.size());
  for (size_t i : indices) {
    LabelMatrix::RowSpan row = matrix.row(i);
    int cp = 0;
    int cn = 0;
    for (const auto& e : row) {
      if (e.label > 0) {
        ++cp;
      } else {
        ++cn;
      }
    }
    ws.rows.push_back(row);
    ws.c_pos.push_back(cp);
    ws.c_neg.push_back(cn);
  }
  return ws;
}

/// Runs `epochs` proximal-gradient epochs on LF j's conditional
/// p(Λ_j | Λ_{\j}) with ℓ1 penalty `epsilon` on the pair weights.
void FitConditional(const Workset& ws, size_t n, size_t j, double epsilon,
                    int epochs, double lr, double mean_acc_weight,
                    ThetaState* state) {
  std::vector<double>& theta = state->pair_weights[j];
  double m = static_cast<double>(ws.rows.size());
  std::vector<double> grad(n, 0.0);

  for (int epoch = 0; epoch < epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_base = 0.0;  // Contribution shared by every abstaining k.
    double grad_acc = 0.0;
    double grad_lab = 0.0;
    double theta_total = 0.0;
    for (size_t k = 0; k < n; ++k) {
      if (k != j) theta_total += theta[k];
    }

    for (size_t i = 0; i < ws.rows.size(); ++i) {
      const auto& row = ws.rows[i];
      Label obs = kAbstain;
      double t_pos = 0.0;
      double t_neg = 0.0;
      double sum_entries = 0.0;
      for (const auto& e : row) {
        if (e.lf == j) {
          obs = e.label;
          continue;
        }
        sum_entries += theta[e.lf];
        if (e.label > 0) {
          t_pos += theta[e.lf];
        } else {
          t_neg += theta[e.lf];
        }
      }
      double t_abstain = theta_total - sum_entries;

      // Pilot posterior over the latent label, excluding LF j's own vote.
      int cp = ws.c_pos[i] - (obs > 0 ? 1 : 0);
      int cn = ws.c_neg[i] - (obs < 0 ? 1 : 0);
      double pi_pos = Sigmoid(mean_acc_weight * static_cast<double>(cp - cn));

      // q(λ | y) for y in {+1, -1}, λ ordered [abstain, +1, -1].
      double q[2][3];
      double r[2];
      int obs_idx = obs == kAbstain ? 0 : (obs > 0 ? 1 : 2);
      for (int yi = 0; yi < 2; ++yi) {
        double acc_pos = yi == 0 ? state->acc[j] : 0.0;
        double acc_neg = yi == 0 ? 0.0 : state->acc[j];
        double s0 = t_abstain;
        double sp = state->lab[j] + acc_pos + t_pos;
        double sn = state->lab[j] + acc_neg + t_neg;
        double hi = std::max({s0, sp, sn});
        double e0 = std::exp(s0 - hi);
        double ep = std::exp(sp - hi);
        double en = std::exp(sn - hi);
        double z = e0 + ep + en;
        q[yi][0] = e0 / z;
        q[yi][1] = ep / z;
        q[yi][2] = en / z;
        r[yi] = (yi == 0 ? pi_pos : 1.0 - pi_pos) * q[yi][obs_idx];
      }
      double rz = r[0] + r[1];
      if (rz <= 0.0) continue;
      r[0] /= rz;
      r[1] /= rz;

      // G_{λ'} = Σ_y r(y) [1{obs = λ'} - q(λ' | y)] for λ' in the 3 slots.
      double g[3];
      for (int s = 0; s < 3; ++s) {
        g[s] = r[0] * ((obs_idx == s ? 1.0 : 0.0) - q[0][s]) +
               r[1] * ((obs_idx == s ? 1.0 : 0.0) - q[1][s]);
      }
      grad_base += g[0];
      for (const auto& e : row) {
        if (e.lf == j) continue;
        int s = e.label > 0 ? 1 : 2;
        grad[e.lf] += g[s] - g[0];
      }
      // Accuracy factor fires when λ = y; the propensity factor when λ != ∅.
      grad_acc += r[0] * ((obs > 0 ? 1.0 : 0.0) - q[0][1]) +
                  r[1] * ((obs < 0 ? 1.0 : 0.0) - q[1][2]);
      grad_lab += r[0] * ((obs != kAbstain ? 1.0 : 0.0) - (1.0 - q[0][0])) +
                  r[1] * ((obs != kAbstain ? 1.0 : 0.0) - (1.0 - q[1][0]));
    }

    for (size_t k = 0; k < n; ++k) {
      if (k == j) continue;
      double step = lr * (grad[k] + grad_base) / m;
      theta[k] = SoftThreshold(theta[k] + step, lr * epsilon);
      theta[k] = Clip(theta[k], -4.0, 4.0);
    }
    state->acc[j] = Clip(state->acc[j] + lr * grad_acc / m, -4.0, 4.0);
    state->lab[j] = Clip(state->lab[j] + lr * grad_lab / m, -6.0, 6.0);
  }
}

/// Fits all n per-LF conditionals concurrently. Each conditional is an
/// independent regression writing only its own slice of `state`
/// (pair_weights[j], acc[j], lab[j]), so the schedule cannot affect the
/// result — the paper's "n independent pseudolikelihood problems" structure
/// made literal.
void FitAllConditionals(const Workset& ws, size_t n, double epsilon,
                        int epochs, double lr, double mean_acc_weight,
                        int num_threads, ThetaState* state) {
  ScopedPool pool(num_threads);
  pool->ParallelFor(0, n, [&](size_t j) {
    FitConditional(ws, n, j, epsilon, epochs, lr, mean_acc_weight, state);
  });
}

std::vector<CorrelationPair> SelectPairs(const ThetaState& state, size_t n,
                                         double epsilon) {
  std::vector<CorrelationPair> selected;
  for (size_t j = 0; j < n; ++j) {
    for (size_t k = j + 1; k < n; ++k) {
      if (std::fabs(state.pair_weights[j][k]) >= epsilon ||
          std::fabs(state.pair_weights[k][j]) >= epsilon) {
        selected.push_back(CorrelationPair{j, k});
      }
    }
  }
  return selected;
}

}  // namespace

StructureLearner::StructureLearner(StructureLearnerOptions options)
    : options_(options) {}

Result<std::vector<CorrelationPair>> StructureLearner::LearnStructure(
    const LabelMatrix& matrix) const {
  return LearnStructure(matrix, options_.epsilon);
}

Result<std::vector<CorrelationPair>> StructureLearner::LearnStructure(
    const LabelMatrix& matrix, double epsilon) const {
  if (matrix.cardinality() != 2) {
    return Status::InvalidArgument(
        "structure learning supports binary matrices");
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  size_t n = matrix.num_lfs();
  if (n < 2) return std::vector<CorrelationPair>{};

  Workset ws = BuildWorkset(matrix, options_.max_rows, options_.seed);
  ThetaState state(n);
  FitAllConditionals(ws, n, epsilon, options_.epochs, options_.learning_rate,
                     options_.mean_acc_weight, options_.num_threads, &state);
  return SelectPairs(state, n, epsilon);
}

Result<std::vector<StructureSweepPoint>> StructureLearner::Sweep(
    const LabelMatrix& matrix, const std::vector<double>& epsilons) const {
  if (matrix.cardinality() != 2) {
    return Status::InvalidArgument(
        "structure learning supports binary matrices");
  }
  for (double eps : epsilons) {
    if (eps <= 0.0) {
      return Status::InvalidArgument("epsilon values must be positive");
    }
  }
  size_t n = matrix.num_lfs();
  std::vector<double> sorted = epsilons;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::vector<StructureSweepPoint> sweep;
  if (n < 2) {
    for (double eps : sorted) sweep.push_back({eps, 0});
    return sweep;
  }

  Workset ws = BuildWorkset(matrix, options_.max_rows, options_.seed);
  ThetaState state(n);
  bool first = true;
  for (double eps : sorted) {
    int epochs = first ? options_.epochs : options_.sweep_epochs;
    first = false;
    FitAllConditionals(ws, n, eps, epochs, options_.learning_rate,
                       options_.mean_acc_weight, options_.num_threads, &state);
    sweep.push_back({eps, SelectPairs(state, n, eps).size()});
  }
  return sweep;
}

size_t StructureLearner::SelectElbowIndex(
    const std::vector<StructureSweepPoint>& sweep) {
  if (sweep.size() < 3) return 0;
  // Curvature of log(1 + count): the count curve "explodes" past the elbow
  // (§3.2.2), and log scale puts the maximum-curvature point at the knee
  // just before the explosion rather than inside it.
  size_t best = 1;
  double best_curvature = -1.0;
  for (size_t i = 1; i + 1 < sweep.size(); ++i) {
    double prev = std::log1p(static_cast<double>(sweep[i - 1].num_correlations));
    double cur = std::log1p(static_cast<double>(sweep[i].num_correlations));
    double next = std::log1p(static_cast<double>(sweep[i + 1].num_correlations));
    double curvature = std::fabs(next - 2.0 * cur + prev);
    if (curvature > best_curvature) {
      best_curvature = curvature;
      best = i;
    }
  }
  return best;
}

}  // namespace snorkel
