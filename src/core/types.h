#ifndef SNORKEL_CORE_TYPES_H_
#define SNORKEL_CORE_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace snorkel {

/// A label emitted by a labeling function or model.
///
/// Conventions (matching the paper's Y ∪ {∅}):
///  * `kAbstain` (0) means the labeling function abstains (∅).
///  * Binary tasks use {+1, -1}.
///  * K-class tasks (e.g. the 5-class Crowd task) use {1, ..., K}.
using Label = int32_t;

/// The abstention marker ∅.
inline constexpr Label kAbstain = 0;

/// True iff `label` is expressible for a task of the given cardinality:
/// ∅ is always valid, binary tasks use {+1, -1}, K-class tasks {1..K}.
/// This is THE vote-validity rule — the label matrix constructors and both
/// LF appliers (lf/applier.h, serve/incremental_applier.h) share it, so a
/// vote can never be "valid" on one layer and rejected by another.
inline bool LabelValidFor(Label label, int cardinality) {
  if (label == kAbstain) return true;
  if (cardinality == 2) return label == 1 || label == -1;
  return label >= 1 && label <= cardinality;
}

/// A pair of labeling-function indices (j, k), j < k, modeled as correlated
/// via the pairwise factor φ^Corr_{i,j,k} = 1{Λ_ij = Λ_ik}.
struct CorrelationPair {
  size_t j = 0;
  size_t k = 0;

  friend bool operator==(const CorrelationPair& a, const CorrelationPair& b) {
    return a.j == b.j && a.k == b.k;
  }
  friend bool operator<(const CorrelationPair& a, const CorrelationPair& b) {
    return a.j != b.j ? a.j < b.j : a.k < b.k;
  }
};

}  // namespace snorkel

#endif  // SNORKEL_CORE_TYPES_H_
