#include "core/csr_kernels.h"

#include <cmath>

#if defined(__x86_64__) || defined(__i386__)
// GCC's gather intrinsics without a source operand expand through an
// uninitialized placeholder register, which trips -Wmaybe-uninitialized at
// -O3 inside the intrinsic headers themselves; the pattern is well-defined.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#include <immintrin.h>
#define SNORKEL_X86 1
#endif

namespace snorkel {

CsrView CsrView::FromMatrix(const LabelMatrix& matrix) {
  CsrView view;
  size_t nnz = matrix.entries().size();
  view.lf.resize(nnz);
  view.row.resize(nnz);
  view.sign.resize(nnz);
  view.offsets = matrix.row_offsets().data();
  view.num_rows = matrix.num_rows();
  view.num_lfs = matrix.num_lfs();
  const auto& offsets = matrix.row_offsets();
  const auto& entries = matrix.entries();
  for (size_t i = 0; i < view.num_rows; ++i) {
    for (size_t t = offsets[i]; t < offsets[i + 1]; ++t) {
      view.lf[t] = entries[t].lf;
      view.row[t] = static_cast<uint32_t>(i);
      view.sign[t] = entries[t].label > 0 ? 1.0 : -1.0;
    }
  }
  return view;
}

CscView CscView::FromMatrix(const LabelMatrix& matrix) {
  CscView view;
  size_t n = matrix.num_lfs();
  size_t m = matrix.num_rows();
  const auto& entries = matrix.entries();
  const auto& offsets = matrix.row_offsets();
  view.num_lfs = n;
  view.offsets.assign(n + 1, 0);
  for (const auto& e : entries) ++view.offsets[e.lf + 1];
  for (size_t j = 0; j < n; ++j) view.offsets[j + 1] += view.offsets[j];
  view.row.resize(entries.size());
  view.sign.resize(entries.size());
  std::vector<size_t> cursor(view.offsets.begin(), view.offsets.end() - 1);
  for (size_t i = 0; i < m; ++i) {
    for (size_t t = offsets[i]; t < offsets[i + 1]; ++t) {
      size_t dst = cursor[entries[t].lf]++;
      view.row[dst] = static_cast<uint32_t>(i);
      view.sign[dst] = entries[t].label > 0 ? 1.0 : -1.0;
    }
  }
  return view;
}

KClassCsrView KClassCsrView::FromMatrix(const LabelMatrix& matrix) {
  KClassCsrView view;
  size_t nnz = matrix.entries().size();
  view.lf.resize(nnz);
  view.emitted.resize(nnz);
  view.offsets = matrix.row_offsets().data();
  view.num_rows = matrix.num_rows();
  view.num_lfs = matrix.num_lfs();
  view.cardinality = matrix.cardinality();
  const auto& entries = matrix.entries();
  const bool binary = matrix.cardinality() == 2;
  for (size_t t = 0; t < nnz; ++t) {
    view.lf[t] = entries[t].lf;
    view.emitted[t] = binary ? (entries[t].label > 0 ? 0u : 1u)
                             : static_cast<uint32_t>(entries[t].label - 1);
  }
  return view;
}

namespace {

// Numerically stable scalar sigmoid (scalar-ISA path only). The vector
// paths must NOT fall back to this for tails: std::exp and the polynomial
// Exp4/Exp8 differ in final ULPs, so a scalar tail would make an element's
// result depend on its position within the batch — which breaks the shard
// router's bitwise sub-batch/merge equivalence (shard/shard_router.h).
// Vector tails instead pad into a full lane vector and reuse the vector
// kernel, keeping SigmoidBatch strictly elementwise.
inline double ScalarSigmoid(double x) {
  if (x >= 0) {
    double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}

// Fixed-order stable softmax over one k-row, bitwise-matching
// SoftmaxInPlace (util/math_util.h): first-max pivot, in-order exp sum,
// exp(x - lse) normalization. Shared by every ISA path — only the additive
// accumulation below is vectorized, because a vectorized reduction here
// would reassociate the sum and change the bits.
inline void RowSoftmaxInPlace(double* row, size_t k) {
  double hi = row[0];
  for (size_t c = 1; c < k; ++c) hi = std::max(hi, row[c]);
  double sum = 0.0;
  for (size_t c = 0; c < k; ++c) sum += std::exp(row[c] - hi);
  double lse = hi + std::log(sum);
  for (size_t c = 0; c < k; ++c) row[c] = std::exp(row[c] - lse);
}

// ------------------------------------------------------------- scalar path --

void WeightedRowSumsScalar(const CsrView& view, const double* weights,
                           double bias, size_t row_lo, size_t row_hi,
                           double* f) {
  for (size_t i = row_lo; i < row_hi; ++i) {
    double fi = bias;
    for (size_t t = view.offsets[i]; t < view.offsets[i + 1]; ++t) {
      fi += weights[view.lf[t]] * view.sign[t];
    }
    f[i] = fi;
  }
}

void SigmoidBatchScalar(const double* x, double* out, size_t count) {
  for (size_t i = 0; i < count; ++i) out[i] = ScalarSigmoid(x[i]);
}

void KClassPosteriorRowsScalar(const KClassCsrView& view,
                               const double* log_priors,
                               const double* log_conf_emit, size_t row_lo,
                               size_t row_hi, double* out) {
  const size_t k = static_cast<size_t>(view.cardinality);
  for (size_t i = row_lo; i < row_hi; ++i) {
    double* row = out + i * k;
    for (size_t c = 0; c < k; ++c) row[c] = log_priors[c];
    for (size_t t = view.offsets[i]; t < view.offsets[i + 1]; ++t) {
      const double* conf =
          log_conf_emit +
          (static_cast<size_t>(view.lf[t]) * k + view.emitted[t]) * k;
      for (size_t c = 0; c < k; ++c) row[c] += conf[c];
    }
    RowSoftmaxInPlace(row, k);
  }
}

void ColumnSignedSumsScalar(const CscView& view, const double* q,
                            size_t col_lo, size_t col_hi, double* acc) {
  for (size_t j = col_lo; j < col_hi; ++j) {
    double sum = 0.0;
    for (size_t t = view.offsets[j]; t < view.offsets[j + 1]; ++t) {
      sum += view.sign[t] * q[view.row[t]];
    }
    acc[j] = sum;
  }
}

#ifdef SNORKEL_X86

// --------------------------------------------------------------- AVX2 path --

// exp(x) for 4 doubles: 2^k * exp(r) with r = x - k·ln2 (hi/lo split) and a
// degree-11 Taylor polynomial on |r| <= ln2/2 (~2 ulp over the sigmoid's
// clamped domain). The per-element operation sequence is identical in every
// lane, so vector width does not change results element-wise.
__attribute__((target("avx2,fma"))) inline __m256d Exp4(__m256d x) {
  const __m256d log2e = _mm256_set1_pd(1.4426950408889634074);
  const __m256d ln2_hi = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d ln2_lo = _mm256_set1_pd(1.42860682030941723212e-6);
  __m256d k = _mm256_round_pd(_mm256_mul_pd(x, log2e),
                              _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(k, ln2_hi, x);
  r = _mm256_fnmadd_pd(k, ln2_lo, r);
  __m256d p = _mm256_set1_pd(1.0 / 39916800.0);
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 3628800.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 362880.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 40320.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 5040.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 720.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 120.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 24.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 6.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(0.5));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
  // Scale by 2^k via the exponent bits; |k| <= 58 after the sigmoid clamp,
  // so no overflow into sign/subnormals.
  __m128i ki = _mm256_cvtpd_epi32(k);
  __m256i ki64 = _mm256_cvtepi32_epi64(ki);
  __m256i bits = _mm256_castpd_si256(p);
  bits = _mm256_add_epi64(bits, _mm256_slli_epi64(ki64, 52));
  return _mm256_castsi256_pd(bits);
}

__attribute__((target("avx2,fma"))) inline __m256d Sigmoid4(__m256d x) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d cap = _mm256_set1_pd(40.0);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d cx = _mm256_min_pd(_mm256_max_pd(x, _mm256_sub_pd(zero, cap)), cap);
  __m256d nax = _mm256_or_pd(_mm256_andnot_pd(sign_mask, cx), sign_mask);
  __m256d e = Exp4(nax);  // exp(-|x|), always in (0, 1].
  __m256d s = _mm256_div_pd(e, _mm256_add_pd(one, e));  // sigmoid(-|x|).
  __m256d pos = _mm256_cmp_pd(x, zero, _CMP_GT_OQ);
  return _mm256_blendv_pd(s, _mm256_sub_pd(one, s), pos);
}

__attribute__((target("avx2,fma"))) double HSum4(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(lo) + _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
}

__attribute__((target("avx2,fma")))
void WeightedRowSumsAvx2(const CsrView& view, const double* weights,
                         double bias, size_t row_lo, size_t row_hi,
                         double* f) {
  for (size_t i = row_lo; i < row_hi; ++i) {
    size_t b = view.offsets[i];
    size_t e = view.offsets[i + 1];
    size_t t = b;
    __m256d acc = _mm256_setzero_pd();
    for (; t + 4 <= e; t += 4) {
      __m128i vi =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(view.lf.data() + t));
      __m256d w = _mm256_i32gather_pd(weights, vi, 8);
      __m256d s = _mm256_loadu_pd(view.sign.data() + t);
      acc = _mm256_fmadd_pd(w, s, acc);
    }
    double fi = bias + HSum4(acc);
    for (; t < e; ++t) fi += weights[view.lf[t]] * view.sign[t];
    f[i] = fi;
  }
}

__attribute__((target("avx2,fma")))
void SigmoidBatchAvx2(const double* x, double* out, size_t count) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    _mm256_storeu_pd(out + i, Sigmoid4(_mm256_loadu_pd(x + i)));
  }
  if (i < count) {
    // Padded tail through the SAME kernel: element results are a function
    // of the element alone, never of batch length or offset.
    double in[4] = {0.0, 0.0, 0.0, 0.0};
    double res[4];
    for (size_t t = i; t < count; ++t) in[t - i] = x[t];
    _mm256_storeu_pd(res, Sigmoid4(_mm256_loadu_pd(in)));
    for (size_t t = i; t < count; ++t) out[t] = res[t - i];
  }
}

// Only the per-entry class-vector accumulation vectorizes (elementwise
// adds, bit-for-bit the scalar loop); the softmax reduction stays the
// shared fixed-order scalar RowSoftmaxInPlace.
__attribute__((target("avx2,fma")))
void KClassPosteriorRowsAvx2(const KClassCsrView& view,
                             const double* log_priors,
                             const double* log_conf_emit, size_t row_lo,
                             size_t row_hi, double* out) {
  const size_t k = static_cast<size_t>(view.cardinality);
  for (size_t i = row_lo; i < row_hi; ++i) {
    double* row = out + i * k;
    for (size_t c = 0; c < k; ++c) row[c] = log_priors[c];
    for (size_t t = view.offsets[i]; t < view.offsets[i + 1]; ++t) {
      const double* conf =
          log_conf_emit +
          (static_cast<size_t>(view.lf[t]) * k + view.emitted[t]) * k;
      size_t c = 0;
      for (; c + 4 <= k; c += 4) {
        _mm256_storeu_pd(row + c, _mm256_add_pd(_mm256_loadu_pd(row + c),
                                                _mm256_loadu_pd(conf + c)));
      }
      for (; c < k; ++c) row[c] += conf[c];
    }
    RowSoftmaxInPlace(row, k);
  }
}

__attribute__((target("avx2,fma")))
void ColumnSignedSumsAvx2(const CscView& view, const double* q, size_t col_lo,
                          size_t col_hi, double* acc) {
  for (size_t j = col_lo; j < col_hi; ++j) {
    size_t t = view.offsets[j];
    size_t e = view.offsets[j + 1];
    __m256d vacc = _mm256_setzero_pd();
    for (; t + 4 <= e; t += 4) {
      __m128i vr = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(view.row.data() + t));
      __m256d qv = _mm256_i32gather_pd(q, vr, 8);
      __m256d s = _mm256_loadu_pd(view.sign.data() + t);
      vacc = _mm256_fmadd_pd(qv, s, vacc);
    }
    double sum = HSum4(vacc);
    for (; t < e; ++t) sum += view.sign[t] * q[view.row[t]];
    acc[j] = sum;
  }
}

// ------------------------------------------------------------ AVX-512 path --
// Same structure 8 lanes wide; gathers are the win, the sigmoid polynomial
// is operation-for-operation the AVX2 one.

__attribute__((target("avx512f"))) inline __m512d Exp8(__m512d x) {
  const __m512d log2e = _mm512_set1_pd(1.4426950408889634074);
  const __m512d ln2_hi = _mm512_set1_pd(6.93145751953125e-1);
  const __m512d ln2_lo = _mm512_set1_pd(1.42860682030941723212e-6);
  __m512d k = _mm512_roundscale_pd(_mm512_mul_pd(x, log2e),
                                   _MM_FROUND_TO_NEAREST_INT |
                                       _MM_FROUND_NO_EXC);
  __m512d r = _mm512_fnmadd_pd(k, ln2_hi, x);
  r = _mm512_fnmadd_pd(k, ln2_lo, r);
  __m512d p = _mm512_set1_pd(1.0 / 39916800.0);
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 3628800.0));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 362880.0));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 40320.0));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 5040.0));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 720.0));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 120.0));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 24.0));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 6.0));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(0.5));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0));
  p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0));
  __m256i ki = _mm512_cvtpd_epi32(k);
  __m512i ki64 = _mm512_cvtepi32_epi64(ki);
  __m512i bits = _mm512_castpd_si512(p);
  bits = _mm512_add_epi64(bits, _mm512_slli_epi64(ki64, 52));
  return _mm512_castsi512_pd(bits);
}

__attribute__((target("avx512f"))) inline __m512d Sigmoid8(__m512d x) {
  const __m512d zero = _mm512_setzero_pd();
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d cap = _mm512_set1_pd(40.0);
  __m512d cx = _mm512_min_pd(_mm512_max_pd(x, _mm512_sub_pd(zero, cap)), cap);
  __m512d ax = _mm512_abs_pd(cx);
  __m512d nax = _mm512_sub_pd(zero, ax);
  __m512d e = Exp8(nax);
  __m512d s = _mm512_div_pd(e, _mm512_add_pd(one, e));
  __mmask8 pos = _mm512_cmp_pd_mask(x, zero, _CMP_GT_OQ);
  return _mm512_mask_sub_pd(s, pos, one, s);
}

__attribute__((target("avx512f")))
void WeightedRowSumsAvx512(const CsrView& view, const double* weights,
                           double bias, size_t row_lo, size_t row_hi,
                           double* f) {
  for (size_t i = row_lo; i < row_hi; ++i) {
    size_t b = view.offsets[i];
    size_t e = view.offsets[i + 1];
    size_t t = b;
    __m512d acc = _mm512_setzero_pd();
    for (; t + 8 <= e; t += 8) {
      __m256i vi = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(view.lf.data() + t));
      __m512d w = _mm512_i32gather_pd(vi, weights, 8);
      __m512d s = _mm512_loadu_pd(view.sign.data() + t);
      acc = _mm512_fmadd_pd(w, s, acc);
    }
    double fi = bias + _mm512_reduce_add_pd(acc);
    for (; t < e; ++t) fi += weights[view.lf[t]] * view.sign[t];
    f[i] = fi;
  }
}

__attribute__((target("avx512f")))
void SigmoidBatchAvx512(const double* x, double* out, size_t count) {
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    _mm512_storeu_pd(out + i, Sigmoid8(_mm512_loadu_pd(x + i)));
  }
  if (i < count) {
    // Padded tail through the SAME kernel (see SigmoidBatchAvx2).
    double in[8] = {0.0};
    double res[8];
    for (size_t t = i; t < count; ++t) in[t - i] = x[t];
    _mm512_storeu_pd(res, Sigmoid8(_mm512_loadu_pd(in)));
    for (size_t t = i; t < count; ++t) out[t] = res[t - i];
  }
}

__attribute__((target("avx512f")))
void KClassPosteriorRowsAvx512(const KClassCsrView& view,
                               const double* log_priors,
                               const double* log_conf_emit, size_t row_lo,
                               size_t row_hi, double* out) {
  const size_t k = static_cast<size_t>(view.cardinality);
  for (size_t i = row_lo; i < row_hi; ++i) {
    double* row = out + i * k;
    for (size_t c = 0; c < k; ++c) row[c] = log_priors[c];
    for (size_t t = view.offsets[i]; t < view.offsets[i + 1]; ++t) {
      const double* conf =
          log_conf_emit +
          (static_cast<size_t>(view.lf[t]) * k + view.emitted[t]) * k;
      size_t c = 0;
      for (; c + 8 <= k; c += 8) {
        _mm512_storeu_pd(row + c, _mm512_add_pd(_mm512_loadu_pd(row + c),
                                                _mm512_loadu_pd(conf + c)));
      }
      for (; c < k; ++c) row[c] += conf[c];
    }
    RowSoftmaxInPlace(row, k);
  }
}

__attribute__((target("avx512f")))
void ColumnSignedSumsAvx512(const CscView& view, const double* q,
                            size_t col_lo, size_t col_hi, double* acc) {
  for (size_t j = col_lo; j < col_hi; ++j) {
    size_t t = view.offsets[j];
    size_t e = view.offsets[j + 1];
    __m512d vacc = _mm512_setzero_pd();
    for (; t + 8 <= e; t += 8) {
      __m256i vr = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(view.row.data() + t));
      __m512d qv = _mm512_i32gather_pd(vr, q, 8);
      __m512d s = _mm512_loadu_pd(view.sign.data() + t);
      vacc = _mm512_fmadd_pd(qv, s, vacc);
    }
    double sum = _mm512_reduce_add_pd(vacc);
    for (; t < e; ++t) sum += view.sign[t] * q[view.row[t]];
    acc[j] = sum;
  }
}

#endif  // SNORKEL_X86

enum class Isa { kScalar, kAvx2, kAvx512 };

Isa DetectIsa() {
#ifdef SNORKEL_X86
  static const Isa isa = [] {
    if (__builtin_cpu_supports("avx512f")) return Isa::kAvx512;
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return Isa::kAvx2;
    }
    return Isa::kScalar;
  }();
  return isa;
#else
  return Isa::kScalar;
#endif
}

}  // namespace

const char* CsrKernelIsa() {
  switch (DetectIsa()) {
    case Isa::kAvx512:
      return "avx512";
    case Isa::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

void WeightedRowSums(const CsrView& view, const double* weights, double bias,
                     size_t row_lo, size_t row_hi, double* f) {
#ifdef SNORKEL_X86
  switch (DetectIsa()) {
    case Isa::kAvx512:
      return WeightedRowSumsAvx512(view, weights, bias, row_lo, row_hi, f);
    case Isa::kAvx2:
      return WeightedRowSumsAvx2(view, weights, bias, row_lo, row_hi, f);
    default:
      break;
  }
#endif
  WeightedRowSumsScalar(view, weights, bias, row_lo, row_hi, f);
}

void SigmoidBatch(const double* x, double* out, size_t count) {
#ifdef SNORKEL_X86
  switch (DetectIsa()) {
    case Isa::kAvx512:
      return SigmoidBatchAvx512(x, out, count);
    case Isa::kAvx2:
      return SigmoidBatchAvx2(x, out, count);
    default:
      break;
  }
#endif
  SigmoidBatchScalar(x, out, count);
}

void KClassPosteriorRows(const KClassCsrView& view, const double* log_priors,
                         const double* log_conf_emit, size_t row_lo,
                         size_t row_hi, double* out) {
#ifdef SNORKEL_X86
  switch (DetectIsa()) {
    case Isa::kAvx512:
      return KClassPosteriorRowsAvx512(view, log_priors, log_conf_emit,
                                       row_lo, row_hi, out);
    case Isa::kAvx2:
      return KClassPosteriorRowsAvx2(view, log_priors, log_conf_emit, row_lo,
                                     row_hi, out);
    default:
      break;
  }
#endif
  KClassPosteriorRowsScalar(view, log_priors, log_conf_emit, row_lo, row_hi,
                            out);
}

void ColumnSignedSums(const CscView& view, const double* q, size_t col_lo,
                      size_t col_hi, double* acc) {
#ifdef SNORKEL_X86
  switch (DetectIsa()) {
    case Isa::kAvx512:
      return ColumnSignedSumsAvx512(view, q, col_lo, col_hi, acc);
    case Isa::kAvx2:
      return ColumnSignedSumsAvx2(view, q, col_lo, col_hi, acc);
    default:
      break;
  }
#endif
  ColumnSignedSumsScalar(view, q, col_lo, col_hi, acc);
}

}  // namespace snorkel
