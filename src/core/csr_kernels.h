#ifndef SNORKEL_CORE_CSR_KERNELS_H_
#define SNORKEL_CORE_CSR_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/label_matrix.h"

namespace snorkel {

/// Structure-of-arrays mirror of a binary label matrix's CSR entries, laid
/// out for the SIMD hot loops: LF indices and row ids as gather indices and
/// the vote sign (+1/-1) premultiplied into a double. Built once per
/// fit/predict pass; `offsets` aliases the matrix's row-offset array, so the
/// view must not outlive the matrix.
struct CsrView {
  std::vector<uint32_t> lf;    // nnz LF indices.
  std::vector<uint32_t> row;   // nnz row ids.
  std::vector<double> sign;    // nnz vote signs, +1.0 / -1.0.
  const size_t* offsets = nullptr;  // num_rows + 1 row offsets.
  size_t num_rows = 0;
  size_t num_lfs = 0;

  static CsrView FromMatrix(const LabelMatrix& matrix);
};

/// Column-major (CSC) companion to CsrView: entry row ids and signs grouped
/// by LF, for the accumulation passes that reduce into per-LF statistics.
/// A column sum is then a pure gather-reduce — no scatter writes at all.
struct CscView {
  std::vector<size_t> offsets;  // num_lfs + 1 column offsets.
  std::vector<uint32_t> row;    // nnz row ids, grouped by LF.
  std::vector<double> sign;     // nnz vote signs, +1.0 / -1.0.
  size_t num_lfs = 0;

  static CscView FromMatrix(const LabelMatrix& matrix);
};

/// SoA mirror of a K-class label matrix for the Dawid-Skene posterior
/// (E-step) serving hot path: per-entry LF indices and emitted CLASS
/// indices (0-based). The label→class mapping matches DawidSkeneModel:
/// binary {+1, -1} → {0, 1}, K-class {1..K} → {0..K-1}. `offsets` aliases
/// the matrix's row-offset array, so the view must not outlive the matrix.
struct KClassCsrView {
  std::vector<uint32_t> lf;       // nnz LF indices.
  std::vector<uint32_t> emitted;  // nnz emitted class indices.
  const size_t* offsets = nullptr;  // num_rows + 1 row offsets.
  size_t num_rows = 0;
  size_t num_lfs = 0;
  int cardinality = 2;

  static KClassCsrView FromMatrix(const LabelMatrix& matrix);
};

/// Batched Dawid-Skene E-step over rows [row_lo, row_hi): accumulates
///   out[i*k + c] = log_priors[c] + Σ_{entries t of row i}
///                  log_conf_emit[(lf[t]*k + emitted[t])*k + c]
/// then applies a numerically-stable row softmax (bitwise-matching
/// SoftmaxInPlace: first-max pivot, in-order exp sum). `log_conf_emit` is
/// the confusion log-table TRANSPOSED to [lf][emitted][class], so every
/// entry contributes one CONTIGUOUS k-vector — the SIMD-friendly layout.
/// Each row's result is a pure function of that row's entries alone: the
/// [row_lo, row_hi) split, worker-side sub-batch fusion, and the
/// scalar/AVX2/AVX-512 dispatch all leave the bits unchanged (the vector
/// paths do elementwise adds only; the softmax reduction stays fixed-order
/// scalar).
void KClassPosteriorRows(const KClassCsrView& view, const double* log_priors,
                         const double* log_conf_emit, size_t row_lo,
                         size_t row_hi, double* out);

/// f[i] = bias + Σ_{entries t of row i} weights[lf[t]] * sign[t], for every
/// row i in [row_lo, row_hi). The sparse-matrix · dense-vector product at
/// the heart of both the training positive phase and posterior inference.
void WeightedRowSums(const CsrView& view, const double* weights, double bias,
                     size_t row_lo, size_t row_hi, double* f);

/// out[i] = sigmoid(x[i]) for i in [0, count). Uses a vectorized
/// polynomial exp (~2 ulp) on AVX2/AVX-512 hardware; the instruction
/// sequence per element is independent of how the caller shards its data,
/// so results do not depend on thread count.
void SigmoidBatch(const double* x, double* out, size_t count);

/// acc[j] = Σ_{entries t of column j} sign[t] * q[row[t]] for every column
/// j in [col_lo, col_hi). Each column is an independent gather-reduce —
/// no scatter writes — so sharding over columns needs no per-shard
/// accumulators (and the result is independent of the sharding by
/// construction).
void ColumnSignedSums(const CscView& view, const double* q, size_t col_lo,
                      size_t col_hi, double* acc);

/// The instruction-set level the kernels dispatched to ("scalar", "avx2",
/// "avx512"); fixed for the lifetime of the process.
const char* CsrKernelIsa();

}  // namespace snorkel

#endif  // SNORKEL_CORE_CSR_KERNELS_H_
