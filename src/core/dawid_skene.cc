#include "core/dawid_skene.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/csr_kernels.h"
#include "util/math_util.h"
#include "util/thread_pool.h"

namespace snorkel {

namespace {

/// Rows per shard in the EM loops; a constant (never the pool size), so
/// per-shard partials reduced in shard order make Fit deterministic for any
/// thread count.
constexpr size_t kRowGrain = 2048;

/// Cap on M-step shards: each one carries an O(n·k²) sufficient-statistics
/// buffer, so the shard count must not scale with num_rows. The grain is
/// still a pure function of m, preserving thread-count determinism.
constexpr size_t kMaxMStepShards = 64;

}  // namespace

DawidSkeneModel::DawidSkeneModel(DawidSkeneOptions options)
    : options_(options) {}

Label DawidSkeneModel::ClassToLabel(size_t c) const {
  if (cardinality_ == 2) return c == 0 ? 1 : -1;
  return static_cast<Label>(c) + 1;
}

size_t DawidSkeneModel::LabelToClass(Label y) const {
  if (cardinality_ == 2) return y > 0 ? 0 : 1;
  assert(y >= 1 && y <= cardinality_);
  return static_cast<size_t>(y) - 1;
}

Status DawidSkeneModel::Fit(const LabelMatrix& matrix) {
  if (matrix.num_rows() == 0 || matrix.num_lfs() == 0) {
    return Status::InvalidArgument("empty label matrix");
  }
  cardinality_ = matrix.cardinality();
  num_lfs_ = matrix.num_lfs();
  size_t k = static_cast<size_t>(cardinality_);
  size_t m = matrix.num_rows();
  size_t n = num_lfs_;
  double s = options_.smoothing;

  // Initialize posteriors from the (smoothed) plurality vote.
  std::vector<std::vector<double>> posterior(m, std::vector<double>(k, 0.0));
  for (size_t i = 0; i < m; ++i) {
    for (double& p : posterior[i]) p = s + 1e-3;
    for (const auto& e : matrix.row(i)) {
      posterior[i][LabelToClass(e.label)] += 1.0;
    }
    double z = 0.0;
    for (double p : posterior[i]) z += p;
    for (double& p : posterior[i]) p /= z;
  }

  class_priors_.assign(k, 1.0 / static_cast<double>(k));
  confusions_.assign(n, std::vector<std::vector<double>>(
                            k, std::vector<double>(k, 1.0 / k)));

  // EM row loops shard over the worker pool with fixed-grain shards and
  // shard-ordered reduction (the generative model's warm start runs through
  // here, so the same determinism guarantee applies).
  ScopedPool pool(options_.num_threads);
  size_t m_grain =
      std::max(kRowGrain, (m + kMaxMStepShards - 1) / kMaxMStepShards);
  size_t num_m_shards = (m + m_grain - 1) / m_grain;
  size_t num_e_shards = (m + kRowGrain - 1) / kRowGrain;
  std::vector<double> shard_conf(num_m_shards * n * k * k);
  std::vector<double> shard_prior(num_m_shards * k);
  std::vector<double> shard_max(num_e_shards);

  iterations_ = 0;
  for (int iter = 0; iter < options_.max_iters; ++iter) {
    ++iterations_;
    // ---- M-step: per-shard sufficient statistics, reduced in shard order.
    std::fill(shard_conf.begin(), shard_conf.end(), 0.0);
    std::fill(shard_prior.begin(), shard_prior.end(), 0.0);
    pool->ParallelForShards(
        0, m, m_grain, [&](size_t shard, size_t lo, size_t hi) {
          double* prior_acc = shard_prior.data() + shard * k;
          double* conf_acc = shard_conf.data() + shard * n * k * k;
          for (size_t i = lo; i < hi; ++i) {
            for (size_t c = 0; c < k; ++c) prior_acc[c] += posterior[i][c];
            for (const auto& e : matrix.row(i)) {
              size_t emitted = LabelToClass(e.label);
              for (size_t c = 0; c < k; ++c) {
                conf_acc[(e.lf * k + c) * k + emitted] += posterior[i][c];
              }
            }
          }
        });
    if (options_.estimate_class_balance) {
      std::vector<double> prior(k, s);
      for (size_t shard = 0; shard < num_m_shards; ++shard) {
        for (size_t c = 0; c < k; ++c) prior[c] += shard_prior[shard * k + c];
      }
      double z = 0.0;
      for (double p : prior) z += p;
      for (size_t c = 0; c < k; ++c) class_priors_[c] = prior[c] / z;
    }
    for (size_t j = 0; j < n; ++j) {
      for (auto& row : confusions_[j]) std::fill(row.begin(), row.end(), s);
    }
    for (size_t shard = 0; shard < num_m_shards; ++shard) {
      const double* conf_acc = shard_conf.data() + shard * n * k * k;
      for (size_t j = 0; j < n; ++j) {
        for (size_t c = 0; c < k; ++c) {
          for (size_t e = 0; e < k; ++e) {
            confusions_[j][c][e] += conf_acc[(j * k + c) * k + e];
          }
        }
      }
    }
    for (size_t j = 0; j < n; ++j) {
      for (size_t c = 0; c < k; ++c) {
        double z = 0.0;
        for (double v : confusions_[j][c]) z += v;
        for (double& v : confusions_[j][c]) v /= z;
      }
    }

    // ---- E-step: disjoint per-row posterior writes; the convergence
    // statistic is a max, reduced over shards. ----
    std::fill(shard_max.begin(), shard_max.end(), 0.0);
    pool->ParallelForShards(
        0, m, kRowGrain, [&](size_t shard, size_t lo, size_t hi) {
          double shard_change = 0.0;
          std::vector<double> log_post(k);
          for (size_t i = lo; i < hi; ++i) {
            for (size_t c = 0; c < k; ++c) {
              log_post[c] = std::log(class_priors_[c]);
            }
            for (const auto& e : matrix.row(i)) {
              size_t emitted = LabelToClass(e.label);
              for (size_t c = 0; c < k; ++c) {
                log_post[c] += std::log(confusions_[e.lf][c][emitted]);
              }
            }
            SoftmaxInPlace(&log_post);
            for (size_t c = 0; c < k; ++c) {
              shard_change = std::max(
                  shard_change, std::fabs(log_post[c] - posterior[i][c]));
              posterior[i][c] = log_post[c];
            }
          }
          shard_max[shard] = shard_change;
        });
    double max_change = 0.0;
    for (double v : shard_max) max_change = std::max(max_change, v);
    if (max_change < options_.tol) break;
  }

  is_fit_ = true;
  BuildLogTables();
  return Status::OK();
}

void DawidSkeneModel::BuildLogTables() {
  size_t k = static_cast<size_t>(cardinality_);
  log_priors_.resize(k);
  for (size_t c = 0; c < k; ++c) log_priors_[c] = std::log(class_priors_[c]);
  // Transposed to [j][emitted][class]: the E-step kernel looks an entry's
  // (lf, emitted) pair up once and adds one contiguous k-vector.
  log_conf_emit_.resize(num_lfs_ * k * k);
  for (size_t j = 0; j < num_lfs_; ++j) {
    for (size_t c = 0; c < k; ++c) {
      for (size_t e = 0; e < k; ++e) {
        log_conf_emit_[(j * k + e) * k + c] = std::log(confusions_[j][c][e]);
      }
    }
  }
}

Status DawidSkeneModel::Restore(int cardinality, size_t num_lfs,
                                std::vector<double> class_priors,
                                const std::vector<double>& flat_confusions) {
  if (cardinality < 2) {
    return Status::InvalidArgument("cardinality must be >= 2");
  }
  if (num_lfs == 0) {
    return Status::InvalidArgument("restore needs at least one LF column");
  }
  size_t k = static_cast<size_t>(cardinality);
  if (class_priors.size() != k) {
    return Status::InvalidArgument(
        "class_priors has " + std::to_string(class_priors.size()) +
        " entries; cardinality is " + std::to_string(cardinality));
  }
  if (flat_confusions.size() != num_lfs * k * k) {
    return Status::InvalidArgument(
        "flat_confusions has " + std::to_string(flat_confusions.size()) +
        " entries; expected num_lfs * k^2 = " +
        std::to_string(num_lfs * k * k));
  }
  // Every parameter is log'd by the E-step, so zeros/negatives/NaNs would
  // poison posteriors silently — reject them here instead.
  for (double p : class_priors) {
    if (!(p > 0.0) || !std::isfinite(p)) {
      return Status::InvalidArgument("class priors must be finite and > 0");
    }
  }
  for (double p : flat_confusions) {
    if (!(p > 0.0) || !std::isfinite(p)) {
      return Status::InvalidArgument(
          "confusion entries must be finite and > 0");
    }
  }
  cardinality_ = cardinality;
  num_lfs_ = num_lfs;
  class_priors_ = std::move(class_priors);
  confusions_.assign(num_lfs, std::vector<std::vector<double>>(
                                  k, std::vector<double>(k, 0.0)));
  for (size_t j = 0; j < num_lfs; ++j) {
    for (size_t c = 0; c < k; ++c) {
      for (size_t e = 0; e < k; ++e) {
        confusions_[j][c][e] = flat_confusions[(j * k + c) * k + e];
      }
    }
  }
  iterations_ = 0;
  is_fit_ = true;
  BuildLogTables();
  return Status::OK();
}

std::vector<double> DawidSkeneModel::FlatConfusions() const {
  size_t k = static_cast<size_t>(cardinality_);
  std::vector<double> flat(num_lfs_ * k * k);
  for (size_t j = 0; j < num_lfs_; ++j) {
    for (size_t c = 0; c < k; ++c) {
      for (size_t e = 0; e < k; ++e) {
        flat[(j * k + c) * k + e] = confusions_[j][c][e];
      }
    }
  }
  return flat;
}

std::vector<double> DawidSkeneModel::PredictProbaFlat(
    const LabelMatrix& matrix) const {
  assert(is_fit_);
  assert(matrix.num_lfs() == num_lfs_);
  assert(matrix.cardinality() == cardinality_);
  size_t k = static_cast<size_t>(cardinality_);
  size_t m = matrix.num_rows();
  std::vector<double> out(m * k);
  if (m == 0) return out;
  KClassCsrView view = KClassCsrView::FromMatrix(matrix);
  // Row-pure kernel + fixed-grain shards: the flat posteriors are
  // bitwise-identical for any thread count and any row-range split.
  ScopedPool pool(options_.num_threads);
  pool->ParallelForShards(0, m, kRowGrain,
                          [&](size_t /*shard*/, size_t lo, size_t hi) {
                            KClassPosteriorRows(view, log_priors_.data(),
                                                log_conf_emit_.data(), lo, hi,
                                                out.data());
                          });
  return out;
}

std::vector<std::vector<double>> DawidSkeneModel::PredictProba(
    const LabelMatrix& matrix) const {
  size_t k = static_cast<size_t>(cardinality_);
  std::vector<double> flat = PredictProbaFlat(matrix);
  std::vector<std::vector<double>> posterior(matrix.num_rows());
  for (size_t i = 0; i < matrix.num_rows(); ++i) {
    posterior[i].assign(flat.begin() + i * k, flat.begin() + (i + 1) * k);
  }
  return posterior;
}

std::vector<Label> DawidSkeneModel::PredictLabels(
    const LabelMatrix& matrix) const {
  auto proba = PredictProba(matrix);
  std::vector<Label> out(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) {
    size_t best = 0;
    for (size_t c = 1; c < proba[i].size(); ++c) {
      if (proba[i][c] > proba[i][best]) best = c;
    }
    out[i] = ClassToLabel(best);
  }
  return out;
}

double DawidSkeneModel::WorkerAccuracy(size_t j) const {
  assert(is_fit_ && j < num_lfs_);
  double acc = 0.0;
  for (size_t c = 0; c < static_cast<size_t>(cardinality_); ++c) {
    acc += class_priors_[c] * confusions_[j][c][c];
  }
  return acc;
}

}  // namespace snorkel
