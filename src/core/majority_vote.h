#ifndef SNORKEL_CORE_MAJORITY_VOTE_H_
#define SNORKEL_CORE_MAJORITY_VOTE_H_

#include <vector>

#include "core/label_matrix.h"
#include "core/types.h"

namespace snorkel {

/// Unweighted vote f_1(Λ_i) = Σ_j Λ_ij for binary rows (abstain = 0).
double UnweightedVote(LabelMatrix::RowSpan row);

/// Weighted vote f_w(Λ_i) = Σ_j w_j Λ_ij for binary rows.
double WeightedVote(LabelMatrix::RowSpan row,
                    const std::vector<double>& weights);

/// Hard unweighted majority-vote predictions for a binary matrix; ties and
/// all-abstain rows yield 0 (no label). Row-sharded over the shared worker
/// pool for large matrices (identical output at any thread count).
std::vector<Label> MajorityVotePredictions(const LabelMatrix& matrix);

/// Hard weighted majority-vote predictions (WMV); ties yield 0.
std::vector<Label> WeightedMajorityVotePredictions(
    const LabelMatrix& matrix, const std::vector<double>& weights);

/// Soft labels from the *unweighted average* of LF outputs:
///   p_i = c_{+1}(Λ_i) / (c_{+1}(Λ_i) + c_{-1}(Λ_i)),
/// with 0.5 on all-abstain rows. This is the "no generative model" baseline
/// of Table 5.
std::vector<double> UnweightedAverageProbs(const LabelMatrix& matrix);

/// Hard multi-class plurality vote over {1..K}; ties broken toward the
/// smallest label, all-abstain rows yield 0.
std::vector<Label> PluralityVotePredictions(const LabelMatrix& matrix);

}  // namespace snorkel

#endif  // SNORKEL_CORE_MAJORITY_VOTE_H_
