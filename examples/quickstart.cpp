// Quickstart: the data-programming core in ~40 lines. Generate a synthetic
// weak-supervision task, fit the generative label model without any ground
// truth, and compare it against majority vote.

#include <cstdio>

#include "core/generative_model.h"
#include "core/majority_vote.h"
#include "eval/metrics.h"
#include "synth/synthetic_matrix.h"

int main() {
  using namespace snorkel;

  // Three strong sources (90%) and three weak ones (60%), 40% coverage each.
  std::vector<SyntheticLfSpec> lfs;
  for (int j = 0; j < 3; ++j) lfs.push_back({0.9, 0.4, -1, 1.0});
  for (int j = 0; j < 3; ++j) lfs.push_back({0.6, 0.4, -1, 1.0});
  auto data = SyntheticMatrixGenerator::Generate({5000, 0.5, 42}, lfs);
  if (!data.ok()) {
    std::printf("generation failed: %s\n", data.status().ToString().c_str());
    return 1;
  }

  // Fit the generative model on the label matrix alone (no gold labels).
  GenerativeModel model;
  if (Status s = model.Fit(data->matrix); !s.ok()) {
    std::printf("fit failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("Estimated source accuracies (true: 3x0.90, 3x0.60):\n");
  for (double alpha : model.EstimatedAccuracies()) {
    std::printf("  %.3f\n", alpha);
  }

  auto gm = ComputeBinaryConfusion(model.PredictLabels(data->matrix),
                                   data->gold);
  auto mv = ComputeBinaryConfusion(MajorityVotePredictions(data->matrix),
                                   data->gold);
  std::printf("\nLabel accuracy: generative model %.3f vs majority vote %.3f\n",
              gm.Accuracy(), mv.Accuracy());
  return 0;
}
