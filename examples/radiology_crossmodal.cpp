// Cross-modal supervision (the §4.1.2 Radiology task): labeling functions
// read the narrative text reports, and the trained classifier operates on a
// completely separate image-feature modality.

#include <cstdio>

#include "core/generative_model.h"
#include "disc/linear_model.h"
#include "eval/metrics.h"
#include "lf/applier.h"
#include "synth/crossmodal.h"

int main() {
  using namespace snorkel;
  RadiologyOptions task_options;
  task_options.num_reports = 2000;
  auto task = MakeRadiologyTask(task_options);
  if (!task.ok()) {
    std::printf("task generation failed\n");
    return 1;
  }
  std::printf("Radiology: %zu reports with %zu text LFs; image modality has "
              "%zu features\n",
              task->candidates.size(), task->lfs.size(),
              task->image_feature_dim);

  // Text side: LFs over reports -> probabilistic abnormality labels.
  LFApplier applier;
  auto matrix = applier.Apply(task->lfs, task->corpus, task->candidates);
  if (!matrix.ok()) return 1;
  GenerativeModelOptions gen_options;
  gen_options.class_balance = 0.36;
  GenerativeModel gen(gen_options);
  if (!gen.Fit(matrix->SelectRows(task->train_idx)).ok()) return 1;
  auto train_probs =
      gen.PredictProba(matrix->SelectRows(task->train_idx), false);

  // Image side: train on probabilistic labels, evaluate AUC on held-out.
  std::vector<FeatureVector> train_images;
  std::vector<FeatureVector> test_images;
  std::vector<Label> test_gold;
  for (size_t i : task->train_idx) train_images.push_back(task->image_features[i]);
  for (size_t i : task->test_idx) {
    test_images.push_back(task->image_features[i]);
    test_gold.push_back(task->gold[i]);
  }
  DiscModelOptions disc_options;
  disc_options.epochs = 30;
  LogisticRegressionClassifier image_model(disc_options);
  if (!image_model.Fit(train_images, task->image_feature_dim, train_probs)
           .ok()) {
    return 1;
  }
  std::printf("Image classifier AUC (trained only on text-derived labels): "
              "%.3f\n",
              RocAuc(image_model.PredictProba(test_images), test_gold));
  return 0;
}
