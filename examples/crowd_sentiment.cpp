// Crowdsourced 5-class sentiment (the §4.1.2 Crowd task): each crowd worker
// is a labeling function; the Dawid-Skene label model denoises their votes;
// a softmax text classifier then predicts independently of the workers.
// The second half runs the same Crowd shape through the DEPLOYMENT stack:
// worker LFs → Dawid-Skene fit → DAWD snapshot (format v2) → sharded
// K-class serving with vector posteriors.

#include <cstdio>

#include "core/dawid_skene.h"
#include "core/majority_vote.h"
#include "disc/linear_model.h"
#include "eval/metrics.h"
#include "pipeline/export_snapshot.h"
#include "shard/shard_router.h"
#include "synth/crossmodal.h"

int main() {
  using namespace snorkel;
  auto task = MakeCrowdTask();
  if (!task.ok()) {
    std::printf("task generation failed\n");
    return 1;
  }
  std::printf("Crowd task: %zu tweets, %zu workers, ~%.0f votes per tweet\n",
              task->tweets.size(), task->worker_matrix.num_lfs(),
              task->worker_matrix.LabelDensity());

  DawidSkeneModel label_model;
  if (!label_model.Fit(task->worker_matrix).ok()) return 1;
  double ds_acc = MulticlassAccuracy(
      label_model.PredictLabels(task->worker_matrix), task->gold);
  double mv_acc = MulticlassAccuracy(
      PluralityVotePredictions(task->worker_matrix), task->gold);
  std::printf("Label model accuracy: Dawid-Skene %.3f vs plurality vote %.3f\n",
              ds_acc, mv_acc);

  // Worker quality estimates vs planted truth for a few workers.
  std::printf("Worker accuracy estimates (first 5): ");
  for (size_t w = 0; w < 5; ++w) {
    std::printf("%.2f(true %.2f) ", label_model.WorkerAccuracy(w),
                task->worker_accuracies[w]);
  }
  std::printf("\n");

  // Train the text model on probabilistic labels; it predicts for tweets no
  // worker ever saw.
  auto posteriors = label_model.PredictProba(task->worker_matrix);
  std::vector<FeatureVector> train_features;
  std::vector<std::vector<double>> train_posteriors;
  std::vector<FeatureVector> test_features;
  std::vector<Label> test_gold;
  for (size_t i : task->train_idx) {
    train_features.push_back(task->text_features[i]);
    train_posteriors.push_back(posteriors[i]);
  }
  for (size_t i : task->test_idx) {
    test_features.push_back(task->text_features[i]);
    test_gold.push_back(task->gold[i]);
  }
  DiscModelOptions options;
  options.epochs = 40;
  SoftmaxRegressionClassifier text_model(options);
  if (!text_model
           .Fit(train_features, task->num_buckets, train_posteriors,
                task->cardinality)
           .ok()) {
    return 1;
  }
  std::printf("Text model accuracy on held-out tweets: %.3f\n",
              MulticlassAccuracy(text_model.PredictLabels(test_features),
                                 test_gold));

  // ---- Deployment: the same Crowd shape through the serving stack. ----
  auto serving_task = MakeCrowdServingTask();
  if (!serving_task.ok()) return 1;
  auto snapshot =
      TrainKClassSnapshot(serving_task->lfs, serving_task->corpus,
                          serving_task->candidates, serving_task->cardinality);
  if (!snapshot.ok()) {
    std::printf("K-class snapshot training failed: %s\n",
                snapshot.status().ToString().c_str());
    return 1;
  }
  ShardRouter::Options router_options;
  router_options.num_shards = 2;
  auto router =
      ShardRouter::Create(*snapshot, serving_task->lfs, router_options);
  if (!router.ok()) return 1;
  LabelRequest request;
  request.corpus = &serving_task->corpus;
  request.candidates = &serving_task->candidates;
  auto response = router->Label(request);
  if (!response.ok()) return 1;
  double served_acc =
      MulticlassAccuracy(response->hard_labels, serving_task->gold);
  std::printf(
      "Served %zu tweets through %zu shards: K = %d class posteriors per "
      "tweet, MAP accuracy vs planted gold %.3f\n",
      response->hard_labels.size(), router->num_shards(),
      response->cardinality, served_acc);
  return 0;
}
