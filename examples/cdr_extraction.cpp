// Chemical-disease relation extraction, end to end, starting from RAW TEXT:
// sentence splitting -> tokenization -> dictionary NER -> candidate
// extraction -> labeling functions -> generative model. This exercises the
// full preprocessing path of Figure 2 on a handful of documents.

#include <cstdio>

#include "core/generative_model.h"
#include "data/candidate.h"
#include "lf/applier.h"
#include "lf/declarative.h"
#include "text/dictionary_tagger.h"
#include "text/tokenizer.h"

int main() {
  using namespace snorkel;

  const char* kRawDocuments[] = {
      "We study a patient who became quadriplegic after parenteral magnesium "
      "administration for preeclampsia. The magnesium dose was reduced.",
      "Aspirin treats headache effectively. However aspirin caused gastritis "
      "in two patients.",
      "Ibuprofen was administered for fever. No adverse events were noted.",
  };

  // 1. Preprocess raw text into the context hierarchy.
  SentenceSplitter splitter;
  Tokenizer tokenizer;
  DictionaryTagger ner;
  ner.AddEntry("magnesium", "chemical", "C_mg");
  ner.AddEntry("aspirin", "chemical", "C_asp");
  ner.AddEntry("ibuprofen", "chemical", "C_ibu");
  ner.AddEntry("quadriplegic", "disease", "D_quad");
  ner.AddEntry("preeclampsia", "disease", "D_pre");
  ner.AddEntry("headache", "disease", "D_ha");
  ner.AddEntry("gastritis", "disease", "D_gas");
  ner.AddEntry("fever", "disease", "D_fev");

  Corpus corpus;
  for (const char* raw : kRawDocuments) {
    Document doc;
    for (const std::string& sentence_text : splitter.Split(raw)) {
      Sentence sentence;
      sentence.words = tokenizer.Tokenize(sentence_text);
      doc.sentences.push_back(std::move(sentence));
    }
    corpus.AddDocument(std::move(doc));
  }
  ner.TagCorpus(&corpus);

  // 2. Extract (chemical, disease) candidates.
  auto candidates = CandidateExtractor("chemical", "disease").Extract(corpus);
  std::printf("Extracted %zu candidates:\n", candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    CandidateView view(&corpus, &candidates[i], i);
    std::printf("  Causes(%s, %s)  between: \"%s\"\n",
                view.Span1Text().c_str(), view.Span2Text().c_str(),
                view.TextBetween().c_str());
  }

  // 3. Labeling functions: patterns, context heuristics, a KB.
  KnowledgeBase ctd;
  ctd.Add("Causes", "C_mg", "D_quad");
  LabelingFunctionSet lfs;
  lfs.Add(MakeKeywordBetweenLF("lf_causes", {"cause"}, 1));
  lfs.Add(MakeDirectionalKeywordLF("lf_after", {"after"}, -1, 1));
  lfs.Add(MakeKeywordBetweenLF("lf_treats", {"treat", "administered"}, -1));
  lfs.Add(MakeOntologyLF("lf_ctd", &ctd, "Causes", 1));
  lfs.Add(MakeDistanceLF("lf_far", 8, -1));

  // 4. Apply and model.
  LFApplier applier;
  auto matrix = applier.Apply(lfs, corpus, candidates);
  if (!matrix.ok()) {
    std::printf("apply failed: %s\n", matrix.status().ToString().c_str());
    return 1;
  }
  std::printf("\nLabel matrix summary:\n%s",
              matrix->SummaryTable(nullptr).c_str());

  GenerativeModelOptions options;
  options.epochs = 100;
  GenerativeModel model(options);
  if (!model.Fit(*matrix).ok()) return 1;
  auto proba = model.PredictProba(*matrix);
  std::printf("\nProbabilistic labels:\n");
  for (size_t i = 0; i < candidates.size(); ++i) {
    CandidateView view(&corpus, &candidates[i], i);
    std::printf("  P(Causes(%s, %s)) = %.2f\n", view.Span1Text().c_str(),
                view.Span2Text().c_str(), proba[i]);
  }
  return 0;
}
