// Spouses relation extraction on the synthetic news-corpus analog, running
// the complete Snorkel pipeline (Figure 2) including the Algorithm 1
// modeling-strategy optimizer and all baselines.

#include <cstdio>

#include "pipeline/pipeline.h"
#include "synth/relation_task.h"

int main() {
  using namespace snorkel;
  auto task = MakeSpousesTask(/*seed=*/7, /*scale=*/0.4);
  if (!task.ok()) {
    std::printf("task generation failed: %s\n",
                task.status().ToString().c_str());
    return 1;
  }
  std::printf("Spouses task: %zu documents, %zu candidates, %zu LFs, %.1f%% "
              "positive\n",
              task->corpus.num_documents(), task->candidates.size(),
              task->lfs.size(), 100 * task->PositiveFraction());

  PipelineOptions options;
  options.use_optimizer = true;
  options.optimizer.eta = 0.05;
  options.optimizer.structure.max_rows = 3000;
  auto report = RunRelationPipeline(*task, options);
  if (!report.ok()) {
    std::printf("pipeline failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("Optimizer decision: %s (predicted advantage %.3f, epsilon "
              "%.2f, %zu correlations)\n",
              ModelingStrategyToString(report->decision.strategy).c_str(),
              report->decision.predicted_advantage,
              report->decision.chosen_epsilon,
              report->decision.correlations.size());
  std::printf("Test scores (P / R / F1):\n");
  auto print_row = [](const char* name, const BinaryConfusion& c) {
    std::printf("  %-22s %.3f / %.3f / %.3f\n", name, c.Precision(),
                c.Recall(), c.F1());
  };
  print_row("distant supervision", report->ds_test);
  print_row("Snorkel (generative)", report->gen_test);
  print_row("Snorkel (discriminative)", report->disc_test);
  print_row("hand supervision", report->hand_test);
  return 0;
}
