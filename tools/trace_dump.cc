// trace_dump: drain the trace-span rings of one or more shard fabric
// processes over the wire (kTraceRequest), optionally add this process's
// own ring, stitch the batches on their shared trace ids, and write Chrome
// trace-event JSON (loadable in chrome://tracing or https://ui.perfetto.dev).
//
//   trace_dump [--out trace.json] [--trace-id ID] [--peek]
//              [--include-local] [--timeout-ms N] host:port [host:port ...]
//
//   --out            output path; "-" or absent = stdout
//   --trace-id       only spans of this trace id (decimal or 0x-hex);
//                    default 0 = every span in the rings
//   --peek           copy instead of drain (spans stay on the servers)
//   --include-local  also export spans recorded in THIS process (useful
//                    when the router runs in the dumping process)
//
// Spans stitch across processes because every process timestamps with
// CLOCK_MONOTONIC, which is system-wide on Linux; dumps across machines
// would need a clock-offset pass that this tool does not attempt.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/remote_client.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "util/binary_io.h"

namespace {

bool ParseEndpoint(const std::string& arg, std::string* host,
                   uint16_t* port) {
  size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon + 1 >= arg.size()) return false;
  *host = arg.substr(0, colon);
  int parsed = std::atoi(arg.c_str() + colon + 1);
  if (parsed <= 0 || parsed > 65535) return false;
  *port = static_cast<uint16_t>(parsed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snorkel;
  std::vector<std::pair<std::string, uint16_t>> endpoints;
  std::string out_path = "-";
  uint64_t trace_id = 0;
  bool drain = true;
  bool include_local = false;
  uint64_t timeout_ms = 2000;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    auto next = [&]() -> const char* {
      return a + 1 < argc ? argv[++a] : "";
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--trace-id") {
      trace_id = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--peek") {
      drain = false;
    } else if (arg == "--include-local") {
      include_local = true;
    } else if (arg == "--timeout-ms") {
      timeout_ms = static_cast<uint64_t>(std::atoll(next()));
    } else {
      std::string host;
      uint16_t port = 0;
      if (!ParseEndpoint(arg, &host, &port)) {
        std::fprintf(stderr,
                     "usage: trace_dump [--out trace.json] [--trace-id ID] "
                     "[--peek] [--include-local] [--timeout-ms N] "
                     "host:port [host:port ...]\n");
        return 1;
      }
      endpoints.emplace_back(std::move(host), port);
    }
  }
  if (endpoints.empty() && !include_local) {
    std::fprintf(stderr,
                 "trace_dump: nothing to dump (no endpoints and no "
                 "--include-local)\n");
    return 1;
  }

  std::vector<obs::SpanBatch> batches;
  int failures = 0;
  for (const auto& [host, port] : endpoints) {
    RemoteShardClient::Options options;
    options.host = host;
    options.port = port;
    options.request_timeout_ms = timeout_ms;
    RemoteShardClient client = RemoteShardClient::Create(options);
    WireTraceRequest request;
    request.trace_id = trace_id;
    request.drain = drain;
    auto batch = client.GetTraceSpans(request);
    if (!batch.ok()) {
      std::fprintf(stderr, "%s:%u: %s\n", host.c_str(), port,
                   batch.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::fprintf(stderr, "%s:%u (%s): %zu spans\n", host.c_str(), port,
                 batch->process.c_str(), batch->spans.size());
    batches.push_back(std::move(*batch));
  }
  if (include_local) {
    obs::SpanBatch local;
    local.process = obs::ProcessLabel();
    local.spans = obs::CollectSpans(trace_id, drain);
    std::fprintf(stderr, "local (%s): %zu spans\n", local.process.c_str(),
                 local.spans.size());
    batches.push_back(std::move(local));
  }

  std::string json = obs::ChromeTraceJson(batches, trace_id);
  if (out_path == "-") {
    std::fputs(json.c_str(), stdout);
  } else {
    Status written = WriteFileBytes(out_path, json);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (%zu batches)\n", out_path.c_str(),
                 batches.size());
  }
  return failures == 0 ? 0 : 1;
}
