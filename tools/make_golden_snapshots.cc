// Regenerates the committed format-evolution fixtures consumed by
// tests/serve_test.cc:
//
//   tests/data/golden_v1.snk       — version-1 (unsectioned) binary snapshot
//   tests/data/golden_v2.snk       — version-2 sectioned K-class (DAWD)
//   tests/data/golden_v2_lfcp.snk  — version-2 carrying a compiled-LF
//                                    program (LFCP) over a declarative LF
//                                    set (one opaque LF stays interpreted)
//
// Every parameter below is an exactly-representable double, so the tests
// can assert VALUE equality against the same literals on any platform. Run
// from the repo root after an intentional format change:
//
//   build/make_golden_snapshots [output_dir=tests/data]
//
// Do NOT regenerate casually — the committed bytes are the compatibility
// contract: a v2 binary must keep loading the v1 bytes as written by the
// v1 writer, byte for byte.

#include <cstdio>
#include <string>

#include "lf/compiled/program.h"
#include "lf/declarative.h"
#include "serve/snapshot.h"
#include "util/binary_io.h"

namespace {

snorkel::ModelSnapshot GoldenV1Snapshot() {
  snorkel::ModelSnapshot snapshot;
  snapshot.lf_names = {"lf_a", "lf_b", "lf_c"};
  snapshot.lf_fingerprints = {11, 22, 33};
  snapshot.cardinality = 2;
  snapshot.has_gen_model = true;
  snapshot.class_balance = 0.625;
  snapshot.acc_weights = {0.5, -0.25, 1.5};
  snapshot.lab_weights = {0.125, 0.25, 0.375};
  snapshot.corr_weights = {0.75};
  snapshot.correlations = {snorkel::CorrelationPair{0, 1}};
  snapshot.has_disc_model = true;
  snapshot.feature_buckets = 4;
  snapshot.disc_weights = {0.5, -0.5, 0.25, 0.0};
  snapshot.disc_bias = -0.125;
  return snapshot;
}

snorkel::ModelSnapshot GoldenV2Snapshot() {
  snorkel::ModelSnapshot snapshot;
  snapshot.lf_names = {"worker_0", "worker_1"};
  snapshot.lf_fingerprints = {101, 102};
  snapshot.cardinality = 3;
  snapshot.has_ds_model = true;
  snapshot.ds_class_priors = {0.25, 0.25, 0.5};
  // worker_0: 0.75 diagonal mass; worker_1: 0.5.
  snapshot.ds_confusions = {
      // worker_0, true class 0..2.
      0.75, 0.125, 0.125,  //
      0.125, 0.75, 0.125,  //
      0.125, 0.125, 0.75,  //
      // worker_1.
      0.5, 0.25, 0.25,  //
      0.25, 0.5, 0.25,  //
      0.25, 0.25, 0.5,  //
  };
  return snapshot;
}

/// The LFCP fixture's LF set: one LF per compilable declarative family plus
/// one opaque lambda that must stay interpreted. tests/serve_test.cc
/// mirrors this set EXACTLY (fingerprints hash (name, version), so the
/// mirrored factory calls reproduce them) — keep the two in sync.
snorkel::LabelingFunctionSet GoldenLfcpLfs() {
  snorkel::LabelingFunctionSet lfs;
  lfs.Add(snorkel::MakeKeywordBetweenLF("kw_causes", {"causes", "induced"},
                                        1));
  lfs.Add(snorkel::MakeDirectionalKeywordLF("dir_treats", {"treats"}, 1, -1));
  lfs.Add(snorkel::MakeRegexBetweenLF("rx_severe", "severe|acute", 1));
  lfs.Add(snorkel::MakeContextKeywordLF("ctx_negated", {"no", "without"}, 3,
                                        -1));
  lfs.Add(snorkel::MakeDistanceLF("dist_far", 8, -1));
  lfs.Add(snorkel::MakeSentenceKeywordLF("sent_normal", {"normal"}, -1));
  lfs.Add(snorkel::MakeDocumentKeywordLF("doc_history", {"history"}, -1));
  lfs.Add(snorkel::LabelingFunction(
      "opaque_short", "v1",
      [](const snorkel::CandidateView& view) -> snorkel::Label {
        return view.TokenDistance() <= 2 ? 1 : snorkel::kAbstain;
      }));
  return lfs;
}

snorkel::ModelSnapshot GoldenLfcpSnapshot() {
  snorkel::LabelingFunctionSet lfs = GoldenLfcpLfs();
  snorkel::ModelSnapshot snapshot;
  snapshot.lf_names = lfs.Names();
  snapshot.lf_fingerprints = lfs.Fingerprints();
  snapshot.cardinality = 2;
  snapshot.has_gen_model = true;
  snapshot.class_balance = 0.5;
  // Exactly-representable weights, one per LF column.
  snapshot.acc_weights = {1.0, 0.75, 0.5, 0.5, 0.25, 0.5, 0.25, 0.125};
  snapshot.lab_weights = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  snapshot.compiled_lfs = snorkel::CompileLfSet(lfs);
  return snapshot;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : "tests/data";

  auto v1 = snorkel::SerializeSnapshotV1(GoldenV1Snapshot());
  if (!v1.ok()) {
    std::fprintf(stderr, "v1 serialize failed: %s\n",
                 v1.status().ToString().c_str());
    return 1;
  }
  std::string v2 = snorkel::SerializeSnapshot(GoldenV2Snapshot());
  std::string v2_lfcp = snorkel::SerializeSnapshot(GoldenLfcpSnapshot());

  for (const auto& [name, bytes] :
       {std::pair<std::string, std::string>{"golden_v1.snk", *v1},
        {"golden_v2.snk", v2},
        {"golden_v2_lfcp.snk", v2_lfcp}}) {
    std::string path = out_dir + "/" + name;
    snorkel::Status written = snorkel::WriteFileBytes(path, bytes);
    if (!written.ok()) {
      std::fprintf(stderr, "write %s failed: %s\n", path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
  }
  return 0;
}
