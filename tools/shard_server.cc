// shard_server: one serving process of the networked shard fabric — a
// LabelService replica behind a TCP socket speaking the net/wire.h protocol
// (net/shard_server.h), with optional SnapshotStore watching for
// zero-downtime rollout.
//
//   shard_server (--snapshot a.snk | --store dir) [--port N] [--port-file P]
//                [--lfset cdr-demo] [--queue-capacity N] [--workers N]
//                [--queue-cost-budget N] [--interactive-rows N]
//                [--sojourn-target-ms N]
//                [--watch-interval-ms N]
//                [--inject-delay-every-n N] [--inject-delay-ms N]
//                [--fault site=kind:params ...] [--process-label NAME]
//
// --queue-cost-budget turns on cost-aware admission (jobs priced rows × LFs
// against the budget), --interactive-rows sets the interactive/bulk lane
// split, --sojourn-target-ms turns on CoDel-style shedding of over-age bulk
// work at pop. All three default off/neutral (count-only admission).
//
// --process-label names this process in exported trace spans (trace_dump
// stitching); the default is "shard-<port>".
//
// --fault arms a util/fault.h injection site at startup (repeatable), e.g.
// --fault net.send=fail-nth:3 or --fault server.label=delay-prob:0.1:50:7;
// the same sites are re-configurable at runtime over the wire
// (kFaultRequest).
//
// LF code cannot be serialized into a snapshot, so the serving process must
// construct the live LF set itself and the server validates it against the
// artifact's names/fingerprints. --lfset selects a built-in set; "cdr-demo"
// is the chemical-disease demo set used by the repo's fixtures, benches, and
// the loopback integration test (tests/net_integration_test.cc builds its
// snapshot over the exact same set).
//
// --port 0 (default) binds an ephemeral port; --port-file writes the bound
// port (single line) once the server is listening, which is how test
// harnesses discover where to connect. Runs until SIGTERM/SIGINT, then
// drains and exits 0.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "lf/declarative.h"
#include "net/shard_server.h"
#include "obs/trace.h"
#include "util/binary_io.h"
#include "util/fault.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

snorkel::Result<snorkel::LabelingFunctionSet> MakeLfSet(
    const std::string& name) {
  using namespace snorkel;
  if (name == "cdr-demo") {
    // Must stay in lock-step with the ShardFixture/net fixture LF set: the
    // snapshot's fingerprints pin these exact (name, version) pairs.
    LabelingFunctionSet lfs;
    lfs.Add(MakeKeywordBetweenLF("lf_causes", {"cause"}, 1));
    lfs.Add(MakeKeywordBetweenLF("lf_treats", {"treat"}, -1));
    lfs.Add(MakeDistanceLF("lf_far", 4, -1));
    return lfs;
  }
  return Status::InvalidArgument("unknown --lfset '" + name +
                                 "' (available: cdr-demo)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snorkel;
  std::string snapshot_path;
  std::string store_dir;
  std::string port_file;
  std::string lfset = "cdr-demo";
  std::string process_label;
  ShardServer::Options options;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    auto next = [&]() -> const char* {
      return a + 1 < argc ? argv[++a] : "";
    };
    if (arg == "--snapshot") {
      snapshot_path = next();
    } else if (arg == "--store") {
      store_dir = next();
    } else if (arg == "--port") {
      options.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--port-file") {
      port_file = next();
    } else if (arg == "--lfset") {
      lfset = next();
    } else if (arg == "--process-label") {
      process_label = next();
    } else if (arg == "--queue-capacity") {
      options.queue_capacity = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--queue-cost-budget") {
      options.queue_cost_budget = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--interactive-rows") {
      options.interactive_rows = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--sojourn-target-ms") {
      options.sojourn_target_ms = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--workers") {
      options.num_workers = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--watch-interval-ms") {
      options.watch_interval_ms = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--inject-delay-every-n") {
      options.inject_delay_every_n = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--inject-delay-ms") {
      options.inject_delay_ms = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--fault") {
      auto parsed = fault::ParseSpec(next());
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 1;
      }
      Status armed = fault::Arm(parsed->first, parsed->second);
      if (!armed.ok()) {
        std::fprintf(stderr, "%s\n", armed.ToString().c_str());
        return 1;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }
  if (snapshot_path.empty() == store_dir.empty()) {
    std::fprintf(stderr,
                 "usage: shard_server (--snapshot a.snk | --store dir) "
                 "[--port N] [--port-file P] [--lfset cdr-demo]\n");
    return 1;
  }

  auto lfs = MakeLfSet(lfset);
  if (!lfs.ok()) {
    std::fprintf(stderr, "%s\n", lfs.status().ToString().c_str());
    return 1;
  }

  auto server =
      store_dir.empty()
          ? ShardServer::Serve(snapshot_path, *lfs, options)
          : ShardServer::ServeFromStore(store_dir, *lfs, options);
  if (!server.ok()) {
    std::fprintf(stderr, "cannot serve: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  // The server installed "shard-<port>" at Start; an explicit label wins.
  if (!process_label.empty()) obs::SetProcessLabel(process_label);
  std::fprintf(stderr, "shard_server listening on 127.0.0.1:%u\n",
               server->port());
  if (!port_file.empty()) {
    Status written =
        WriteFileBytes(port_file, std::to_string(server->port()) + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write --port-file: %s\n",
                   written.ToString().c_str());
      return 1;
    }
  }

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server->Shutdown();
  ShardServer::Stats stats = server->stats();
  std::fprintf(stderr,
               "shard_server exiting: %llu requests, %llu candidates, "
               "%llu rejections, %llu shed, %llu cancelled, "
               "%llu swaps (%llu rejected), %llu faults injected\n",
               static_cast<unsigned long long>(stats.requests_served),
               static_cast<unsigned long long>(stats.candidates_served),
               static_cast<unsigned long long>(stats.queue_rejections),
               static_cast<unsigned long long>(stats.shed_total),
               static_cast<unsigned long long>(stats.expired_work_cancelled),
               static_cast<unsigned long long>(stats.snapshot_swaps),
               static_cast<unsigned long long>(stats.rejected_swaps),
               static_cast<unsigned long long>(stats.faults_injected));
  return 0;
}
