// snapshot_diff: compares two model-snapshot artifacts and reports drift —
// the ROADMAP's "snapshot diffing for LF-weight drift monitoring" tool.
//
//   snapshot_diff A.snk B.snk [--fail-over X] [--promote STORE_DIR]
//
// Reports, for any mix of v1/v2 artifacts:
//   * file version + v2 section table (tag, bytes, checksum, known/unknown),
//   * LF-set membership changes (added / removed / re-fingerprinted LFs),
//   * compiled-LF program (LFCP) summaries — automaton/pattern/symbol
//     counts — and compiled-set membership drift: any common LF that moved
//     between the compiled and interpreted engines,
//   * generative-model drift: per-LF accuracy/propensity weight deltas,
//     correlation-set changes, class-balance delta,
//   * Dawid-Skene drift: per-LF worker-accuracy deltas (prior-weighted
//     confusion diagonals) and max confusion-entry delta,
//   * discriminative-model drift summary.
//
// With --fail-over X the process exits 2 when the largest absolute label-
// model weight/parameter delta exceeds X, or when the compiled-set
// membership drifted at all (an LF silently changing execution engines is
// structural, not a magnitude — any threshold gates it); load errors
// exit 1.
//
// With --promote STORE_DIR the tool is the rollout gate: when the diff
// passes (the --fail-over threshold, if given, is not exceeded), B is
// published into the SnapshotStore at STORE_DIR as the next version —
// write-to-temp + atomic rename, so watching shard servers either see the
// complete artifact or nothing. A failed gate exits 2 WITHOUT publishing.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "lf/compiled/program.h"
#include "net/snapshot_store.h"
#include "serve/snapshot.h"
#include "util/binary_io.h"
#include "util/table_printer.h"

namespace {

using snorkel::ModelSnapshot;

/// Reads the u32 version field without decoding the artifact.
uint32_t PeekVersion(const std::string& bytes) {
  if (bytes.size() < 8) return 0;
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  return version;
}

void PrintSections(const char* label, const std::string& bytes) {
  uint32_t version = PeekVersion(bytes);
  std::printf("%s: version %u, %zu bytes\n", label, version, bytes.size());
  auto sections = snorkel::ListSnapshotSections(bytes);
  if (!sections.ok()) {
    std::printf("  (unsectioned: %s)\n",
                sections.status().message().c_str());
    return;
  }
  snorkel::TablePrinter table({"Section", "Bytes", "Checksum", "Known"});
  for (const auto& section : *sections) {
    table.AddRow({section.tag,
                  snorkel::TablePrinter::Cell(
                      static_cast<int64_t>(section.payload_size)),
                  section.checksum_ok ? "ok" : "MISMATCH",
                  section.known ? "yes" : "no (skipped)"});
  }
  std::printf("%s", table.ToString().c_str());
}

/// Prior-weighted diagonal of LF j's confusion matrix: P(vote correct).
double WorkerAccuracyOf(const ModelSnapshot& snapshot, size_t j) {
  size_t k = static_cast<size_t>(snapshot.cardinality);
  double acc = 0.0;
  for (size_t c = 0; c < k; ++c) {
    acc += snapshot.ds_class_priors[c] *
           snapshot.ds_confusions[(j * k + c) * k + c];
  }
  return acc;
}

/// Whether LF column j executes on the compiled engine under `snapshot`.
bool CompiledFlagOf(const ModelSnapshot& snapshot, size_t j) {
  return snapshot.compiled_lfs != nullptr &&
         j < snapshot.compiled_lfs->slot_of_lf.size() &&
         snapshot.compiled_lfs->slot_of_lf[j] >= 0;
}

void PrintCompiledProgram(const char* label, const ModelSnapshot& snapshot) {
  if (snapshot.compiled_lfs == nullptr) {
    std::printf("%s: no LFCP section (all LFs interpreted)\n", label);
    return;
  }
  const snorkel::CompiledLfProgram& p = *snapshot.compiled_lfs;
  std::printf(
      "%s: %zu/%llu LFs compiled; token AC %zu nodes / %zu patterns; "
      "byte AC %zu nodes / %zu patterns; %zu interned symbols\n",
      label, p.num_compiled(), static_cast<unsigned long long>(p.num_lfs),
      p.token_ac.num_nodes(), p.token_pattern_slots.size(),
      p.byte_ac.num_nodes(), p.byte_pattern_slots.size(), p.symbols.size());
}

struct DriftSummary {
  double max_abs_delta = 0.0;
  void Observe(double delta) {
    max_abs_delta = std::max(max_abs_delta, std::fabs(delta));
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace snorkel;
  std::string path_a, path_b, promote_dir;
  double fail_over = -1.0;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--fail-over" && a + 1 < argc) {
      fail_over = std::atof(argv[++a]);
    } else if (arg == "--promote" && a + 1 < argc) {
      promote_dir = argv[++a];
    } else if (path_a.empty()) {
      path_a = arg;
    } else if (path_b.empty()) {
      path_b = arg;
    }
  }
  if (path_a.empty() || path_b.empty()) {
    std::fprintf(stderr,
                 "usage: snapshot_diff <a.snk> <b.snk> [--fail-over X] "
                 "[--promote STORE_DIR]\n");
    return 1;
  }

  auto bytes_a = ReadFileBytes(path_a);
  auto bytes_b = ReadFileBytes(path_b);
  if (!bytes_a.ok() || !bytes_b.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 (!bytes_a.ok() ? bytes_a : bytes_b).status().ToString()
                     .c_str());
    return 1;
  }
  auto a = DeserializeSnapshot(*bytes_a);
  auto b = DeserializeSnapshot(*bytes_b);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 (!a.ok() ? a : b).status().ToString().c_str());
    return 1;
  }

  PrintSections("A", *bytes_a);
  PrintSections("B", *bytes_b);
  std::printf("\n");

  if (a->cardinality != b->cardinality) {
    std::printf("cardinality: %d -> %d (NOT comparable as the same task)\n",
                a->cardinality, b->cardinality);
  }

  // ---- LF-set membership by name; fingerprints detect re-versioned LFs.
  std::map<std::string, size_t> index_a, index_b;
  for (size_t j = 0; j < a->lf_names.size(); ++j) index_a[a->lf_names[j]] = j;
  for (size_t j = 0; j < b->lf_names.size(); ++j) index_b[b->lf_names[j]] = j;
  size_t added = 0, removed = 0, refingered = 0;
  for (const auto& [name, j] : index_b) {
    if (index_a.find(name) == index_a.end()) {
      std::printf("LF added:   %s\n", name.c_str());
      ++added;
    } else if (a->lf_fingerprints[index_a[name]] != b->lf_fingerprints[j]) {
      std::printf("LF re-fingerprinted (behaviour changed): %s\n",
                  name.c_str());
      ++refingered;
    }
  }
  for (const auto& [name, j] : index_a) {
    (void)j;
    if (index_b.find(name) == index_b.end()) {
      std::printf("LF removed: %s\n", name.c_str());
      ++removed;
    }
  }
  std::printf("LF set: %zu -> %zu columns (%zu added, %zu removed, "
              "%zu re-fingerprinted)\n\n",
              a->lf_names.size(), b->lf_names.size(), added, removed,
              refingered);

  // ---- Compiled-LF program (LFCP): which engine serves each column. ----
  size_t engine_moves = 0;
  if (a->compiled_lfs != nullptr || b->compiled_lfs != nullptr) {
    PrintCompiledProgram("LFCP A", *a);
    PrintCompiledProgram("LFCP B", *b);
    TablePrinter moved({"LF", "engine A", "engine B"});
    for (const auto& [name, ja] : index_a) {
      auto it = index_b.find(name);
      if (it == index_b.end()) continue;
      bool ca = CompiledFlagOf(*a, ja);
      bool cb = CompiledFlagOf(*b, it->second);
      if (ca == cb) continue;
      ++engine_moves;
      moved.AddRow({name, ca ? "compiled" : "interpreted",
                    cb ? "compiled" : "interpreted"});
    }
    if (engine_moves > 0) {
      std::printf("compiled-set membership drift (%zu LFs changed "
                  "engine):\n%s",
                  engine_moves, moved.ToString().c_str());
    } else {
      std::printf("compiled-set membership: no drift over common LFs\n");
    }
    std::printf("\n");
  }

  DriftSummary drift;

  // ---- Generative-model weight drift over the common LF names. ----
  if (a->has_gen_model && b->has_gen_model) {
    TablePrinter table({"LF", "acc A", "acc B", "Δacc", "Δlab"});
    double max_acc = 0.0, sum_acc = 0.0;
    size_t common = 0;
    for (const auto& [name, ja] : index_a) {
      auto it = index_b.find(name);
      if (it == index_b.end()) continue;
      size_t jb = it->second;
      double d_acc = b->acc_weights[jb] - a->acc_weights[ja];
      double d_lab = b->lab_weights[jb] - a->lab_weights[ja];
      drift.Observe(d_acc);
      drift.Observe(d_lab);
      max_acc = std::max(max_acc, std::fabs(d_acc));
      sum_acc += std::fabs(d_acc);
      ++common;
      table.AddRow({name, TablePrinter::Cell(a->acc_weights[ja], 4),
                    TablePrinter::Cell(b->acc_weights[jb], 4),
                    TablePrinter::Cell(d_acc, 4),
                    TablePrinter::Cell(d_lab, 4)});
    }
    std::printf("Generative model (GENM), %zu common LFs:\n%s", common,
                table.ToString().c_str());
    std::printf("acc-weight drift: max |Δ| %.6f, mean |Δ| %.6f\n",
                max_acc, common > 0 ? sum_acc / common : 0.0);
    double d_balance = b->class_balance - a->class_balance;
    drift.Observe(d_balance);
    std::printf("class balance: %.4f -> %.4f (Δ %.6f)\n", a->class_balance,
                b->class_balance, d_balance);
    if (a->correlations != b->correlations) {
      std::printf("correlation set changed: %zu -> %zu pairs\n",
                  a->correlations.size(), b->correlations.size());
    }
    std::printf("\n");
  } else if (a->has_gen_model != b->has_gen_model) {
    std::printf("GENM section: %s -> %s\n\n",
                a->has_gen_model ? "present" : "absent",
                b->has_gen_model ? "present" : "absent");
  }

  // ---- Dawid-Skene drift. ----
  if (a->has_ds_model && b->has_ds_model &&
      a->cardinality == b->cardinality) {
    TablePrinter table({"LF", "worker acc A", "worker acc B", "Δ"});
    double max_conf = 0.0;
    size_t common = 0;
    for (const auto& [name, ja] : index_a) {
      auto it = index_b.find(name);
      if (it == index_b.end()) continue;
      size_t jb = it->second;
      double wa = WorkerAccuracyOf(*a, ja);
      double wb = WorkerAccuracyOf(*b, jb);
      drift.Observe(wb - wa);
      size_t k = static_cast<size_t>(a->cardinality);
      for (size_t c = 0; c < k; ++c) {
        for (size_t e = 0; e < k; ++e) {
          double delta = b->ds_confusions[(jb * k + c) * k + e] -
                         a->ds_confusions[(ja * k + c) * k + e];
          drift.Observe(delta);
          max_conf = std::max(max_conf, std::fabs(delta));
        }
      }
      ++common;
      table.AddRow({name, TablePrinter::Cell(wa, 4),
                    TablePrinter::Cell(wb, 4),
                    TablePrinter::Cell(wb - wa, 4)});
    }
    std::printf("Dawid-Skene model (DAWD), K = %d, %zu common LFs:\n%s",
                a->cardinality, common, table.ToString().c_str());
    std::printf("max confusion-entry |Δ|: %.6f\n\n", max_conf);
  } else if (a->has_ds_model != b->has_ds_model) {
    std::printf("DAWD section: %s -> %s\n\n",
                a->has_ds_model ? "present" : "absent",
                b->has_ds_model ? "present" : "absent");
  }

  // ---- Discriminative model summary. ----
  if (a->has_disc_model && b->has_disc_model) {
    if (a->feature_buckets != b->feature_buckets) {
      std::printf("DISC: feature buckets %llu -> %llu (not comparable)\n",
                  static_cast<unsigned long long>(a->feature_buckets),
                  static_cast<unsigned long long>(b->feature_buckets));
    } else {
      double max_w = 0.0;
      for (size_t i = 0; i < a->disc_weights.size(); ++i) {
        max_w = std::max(max_w,
                         std::fabs(b->disc_weights[i] - a->disc_weights[i]));
      }
      std::printf("DISC: max weight |Δ| %.6f, bias Δ %.6f\n", max_w,
                  b->disc_bias - a->disc_bias);
    }
  } else if (a->has_disc_model != b->has_disc_model) {
    std::printf("DISC section: %s -> %s\n",
                a->has_disc_model ? "present" : "absent",
                b->has_disc_model ? "present" : "absent");
  }

  std::printf("\nlabel-model max |Δ|: %.6f\n", drift.max_abs_delta);
  if (fail_over >= 0.0 && engine_moves > 0) {
    std::fprintf(stderr,
                 "compiled-set membership drifted (%zu LFs changed engine) "
                 "under --fail-over%s\n",
                 engine_moves, promote_dir.empty() ? "" : "; NOT promoting");
    return 2;
  }
  if (fail_over >= 0.0 && drift.max_abs_delta > fail_over) {
    std::fprintf(stderr, "drift %.6f exceeds --fail-over %.6f%s\n",
                 drift.max_abs_delta, fail_over,
                 promote_dir.empty() ? "" : "; NOT promoting");
    return 2;
  }

  // ---- Promotion: gate passed — publish B as the store's next version.
  // Watching shard servers (net/shard_server.h) pick it up and hot-swap.
  if (!promote_dir.empty()) {
    auto store = SnapshotStore::Open(promote_dir);
    if (!store.ok()) {
      std::fprintf(stderr, "promote failed: %s\n",
                   store.status().ToString().c_str());
      return 1;
    }
    auto current = store->ListVersions();
    if (!current.ok()) {
      std::fprintf(stderr, "promote failed: %s\n",
                   current.status().ToString().c_str());
      return 1;
    }
    uint64_t next = current->empty() ? 1 : current->back() + 1;
    Status promoted = store->PromoteFile(path_b, next);
    if (!promoted.ok()) {
      std::fprintf(stderr, "promote failed: %s\n",
                   promoted.ToString().c_str());
      return 1;
    }
    std::printf("promoted %s -> %s (version %llu, checksum %016llx)\n",
                path_b.c_str(), store->PathFor(next).c_str(),
                static_cast<unsigned long long>(next),
                static_cast<unsigned long long>(b->CanonicalChecksum()));
  }
  return 0;
}
