// metrics_scrape: fetch the unified MetricsRegistry of one or more shard
// fabric processes over the wire (kMetricsRequest) and print the Prometheus
// text to stdout.
//
//   metrics_scrape host:port [host:port ...] [--timeout-ms N]
//
// Each endpoint's exposition is prefixed with a `# endpoint:` comment line
// so a multi-shard scrape stays attributable. An endpoint that cannot be
// reached (or an OLD server that answers kError for the unknown frame type)
// is reported on stderr and the scrape continues; the exit code is non-zero
// if ANY endpoint failed.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/remote_client.h"

namespace {

bool ParseEndpoint(const std::string& arg, std::string* host,
                   uint16_t* port) {
  size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon + 1 >= arg.size()) return false;
  *host = arg.substr(0, colon);
  int parsed = std::atoi(arg.c_str() + colon + 1);
  if (parsed <= 0 || parsed > 65535) return false;
  *port = static_cast<uint16_t>(parsed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snorkel;
  std::vector<std::pair<std::string, uint16_t>> endpoints;
  uint64_t timeout_ms = 2000;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--timeout-ms") {
      timeout_ms =
          a + 1 < argc ? static_cast<uint64_t>(std::atoll(argv[++a])) : 0;
      continue;
    }
    std::string host;
    uint16_t port = 0;
    if (!ParseEndpoint(arg, &host, &port)) {
      std::fprintf(stderr,
                   "usage: metrics_scrape host:port [host:port ...] "
                   "[--timeout-ms N]\n");
      return 1;
    }
    endpoints.emplace_back(std::move(host), port);
  }
  if (endpoints.empty()) {
    std::fprintf(stderr,
                 "usage: metrics_scrape host:port [host:port ...] "
                 "[--timeout-ms N]\n");
    return 1;
  }

  int failures = 0;
  for (const auto& [host, port] : endpoints) {
    RemoteShardClient::Options options;
    options.host = host;
    options.port = port;
    options.request_timeout_ms = timeout_ms;
    RemoteShardClient client = RemoteShardClient::Create(options);
    auto text = client.GetMetrics();
    if (!text.ok()) {
      std::fprintf(stderr, "%s:%u: %s\n", host.c_str(), port,
                   text.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("# endpoint: %s:%u\n%s", host.c_str(), port, text->c_str());
  }
  return failures == 0 ? 0 : 1;
}
